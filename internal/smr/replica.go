package smr

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/omega"
	"repro/internal/transport"
	"repro/internal/wal"
)

// ErrClosed is returned by operations on a closed replica.
var ErrClosed = errors.New("smr: replica closed")

// KindSlot is the wire kind of slot-wrapped consensus traffic.
const KindSlot = "smr.slot"

// SlotMessage carries one core-protocol message for one log slot.
type SlotMessage struct {
	Slot      int             `json:"slot"`
	InnerKind string          `json:"innerKind"`
	InnerBody json.RawMessage `json:"innerBody"`
}

// Kind implements consensus.Message.
func (SlotMessage) Kind() string { return KindSlot }

// AppendBody splices the message's JSON body into dst verbatim instead of
// letting encoding/json re-validate and compact the RawMessage — slot wrap
// is the hottest encode in the system (every inter-replica protocol message
// takes it), and implementing consensus.BodyAppender lets codec.Encode
// build the whole frame in one buffer. The field names must stay in
// lockstep with the struct tags: decoding remains reflective.
func (m SlotMessage) AppendBody(dst []byte) []byte {
	dst = append(dst, `{"slot":`...)
	dst = strconv.AppendInt(dst, int64(m.Slot), 10)
	dst = append(dst, `,"innerKind":`...)
	dst = strconv.AppendQuote(dst, m.InnerKind)
	dst = append(dst, `,"innerBody":`...)
	if len(m.InnerBody) == 0 {
		dst = append(dst, "null"...)
	} else {
		dst = append(dst, m.InnerBody...)
	}
	return append(dst, '}')
}

// MarshalJSON keeps plain json.Marshal of a SlotMessage (WAL payloads,
// tests) on the same spliced encoding.
func (m SlotMessage) MarshalJSON() ([]byte, error) {
	b := make([]byte, 0, len(`{"slot":,"innerKind":,"innerBody":}`)+20+len(m.InnerKind)+2+len(m.InnerBody))
	return m.AppendBody(b), nil
}

// RegisterMessages registers the smr (and required inner) kinds with codec.
func RegisterMessages(codec *consensus.Codec) {
	codec.MustRegister(KindSlot, func() consensus.Message { return &SlotMessage{} })
	registerCatchupMessages(codec)
	omega.RegisterMessages(codec)
}

// innerCodec decodes slot-wrapped core messages.
func innerCodec() *consensus.Codec {
	c := consensus.NewCodec()
	core.RegisterMessages(c)
	return c
}

// Replica is one member of the replicated state machine. It hosts an Ω
// detector and one object-mode core consensus instance per log slot, and
// applies decided commands to a key-value store in slot order.
type Replica struct {
	cfg   consensus.Config
	tick  time.Duration
	inner *consensus.Codec

	mu       sync.Mutex
	tr       transport.Transport
	det      *omega.Detector
	slots    map[int]*core.Node
	log      map[int]consensus.Value
	applied  int
	store    map[string]string
	waiters  map[int][]chan consensus.Value
	appliedW map[int][]chan struct{}
	gens     map[string]int64
	timers   map[string]*time.Timer
	seq      int64
	closed   bool

	// freeHint is a monotonic lower bound on the smallest undecided slot,
	// advanced by decideLocked so nextFreeSlotLocked does not rescan the
	// decided prefix on every contended submit. propHint is one past the
	// newest slot this replica proposed in: concurrent local Executes must
	// land in distinct slots, or they all race for the same one and the
	// losers pay a conflict round (with I/O off the lock the race window is
	// the whole pipeline, not just the in-lock step, so this is load-bearing
	// for parallel submits).
	freeHint int
	propHint int

	// Out-of-lock I/O (see outbox.go, iosched.go). io is private by default
	// and shared across groups under the sharded runtime (ShareIO). wakes
	// accumulates the wakeups of the current locked step; emitLocked drains
	// it into the outbox. legacy reverts to in-lock fsync+send for baseline
	// measurement.
	io       *IOScheduler
	ioShared bool
	wakes    []wakeup
	legacy   bool

	// Anti-entropy state: the largest applied index any peer announced,
	// and the compaction floor below which slot instances and log entries
	// have been discarded (stragglers there are served snapshots).
	maxSeenApplied int
	compactFloor   int

	// batch, when non-nil, groups Submit traffic into OpBatch commands.
	batch *batcher

	// faultStale deliberately serves overwritten values from faultPrev —
	// the chaos harness's "teeth" fault (see FaultInjectStaleReads).
	faultStale bool
	faultPrev  map[string]string

	// dur, when non-nil, journals slot state to a WAL and checkpoints the
	// applied store into snapshots (see durability.go).
	dur *durable

	// ls, when non-nil, tracks the replicated leader lease (EnableLeases,
	// see lease.go); rgate coalesces concurrent linearizable reads behind
	// shared no-op rounds regardless of leases (see readbarrier.go).
	ls    *leaseState
	rgate readGate
}

// NewReplica builds a replica. Call BindTransport, then Start. Flexible
// quorum sizes (cfg.FastSize/cfg.RecoverySize, see internal/quorum.NewFlex)
// are validated here and honored by every slot's core node.
func NewReplica(cfg consensus.Config, tick time.Duration) (*Replica, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("smr: %w", err)
	}
	return &Replica{
		cfg:      cfg,
		tick:     tick,
		inner:    innerCodec(),
		det:      omega.New(cfg, 0),
		slots:    make(map[int]*core.Node),
		log:      make(map[int]consensus.Value),
		store:    make(map[string]string),
		waiters:  make(map[int][]chan consensus.Value),
		appliedW: make(map[int][]chan struct{}),
		gens:     make(map[string]int64),
		timers:   make(map[string]*time.Timer),
		io:       newIOScheduler(),
	}, nil
}

// ShareIO attaches the replica to a shared I/O scheduler (NewSharedIO):
// its WAL commits, sends, and wakeups interleave with every other replica
// on the same scheduler, and fsyncs coalesce across all of them — the
// sharded runtime's single group-commit stream. The scheduler's owner must
// Close it after the replicas; the replicas themselves only flush through
// it. Call before EnableDurability/Start, and only with a durability setup
// whose Journal targets the same underlying WAL as every other sharer.
func (r *Replica) ShareIO(s *IOScheduler) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.io = s
	r.ioShared = true
}

// currentTransport reads the bound transport under the lock (the outbox
// consumer reloads it per entry owner so Kill's detach is respected).
func (r *Replica) currentTransport() transport.Transport {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tr
}

// journal returns the durability journal, nil without durability.
func (r *Replica) journal() Journal {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.dur == nil {
		return nil
	}
	return r.dur.wal
}

// ID returns this replica's process id.
func (r *Replica) ID() consensus.ProcessID { return r.cfg.ID }

// OmegaLeader returns the Ω failure detector's current leader estimate —
// the replica most likely to complete fast-path proposals, which the
// session protocol hands to clients as a proposer-locality hint (the OHAI
// line, see docs/SESSIONS.md).
func (r *Replica) OmegaLeader() consensus.ProcessID {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.det.Leader()
}

// SetLegacyPath reverts the replica to the pre-overhaul I/O discipline —
// fsync and transport sends performed inside the protocol step, under the
// replica lock — so a bench run can measure old and new hot paths in the
// same process (the F4b "legacy" rows). Call before Start.
func (r *Replica) SetLegacyPath(on bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.legacy = on
}

// BindTransport installs the transport (which should deliver to Handle).
func (r *Replica) BindTransport(tr transport.Transport) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tr = tr
}

// Start boots the Ω detector and the status gossip. Slots start lazily on
// first touch.
func (r *Replica) Start() {
	r.mu.Lock()
	em := r.emitLocked(r.applyDetectorLocked(r.det.Start()))
	r.scheduleStatusLocked()
	if r.ls != nil && r.ls.opts.AutoGrant {
		r.scheduleLeaseLocked()
	}
	r.mu.Unlock()
	r.completeEmit(em)
}

// statusPeriod is the applied-index gossip period, in protocol ticks.
func (r *Replica) statusPeriod() time.Duration {
	return time.Duration(5*r.cfg.Delta) * r.tick
}

// scheduleStatusLocked (re)arms the periodic status broadcast.
func (r *Replica) scheduleStatusLocked() {
	const key = "smr/status"
	r.gens[key]++
	gen := r.gens[key]
	if t, ok := r.timers[key]; ok {
		t.Stop()
	}
	r.timers[key] = time.AfterFunc(r.statusPeriod(), func() {
		r.mu.Lock()
		if r.closed || r.gens[key] != gen {
			r.mu.Unlock()
			return
		}
		var out []outbound
		for i := 0; i < r.cfg.N; i++ {
			if p := consensus.ProcessID(i); p != r.cfg.ID {
				out = append(out, outbound{to: p, msg: &Status{Applied: r.applied}})
			}
		}
		r.scheduleStatusLocked()
		// Through the outbox: the advertised applied index must not get
		// ahead of the journal on disk.
		em := r.emitLocked(out)
		r.mu.Unlock()
		r.completeEmit(em)
	})
}

// Handle is the transport handler.
func (r *Replica) Handle(from consensus.ProcessID, msg consensus.Message) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	var out []outbound
	switch m := msg.(type) {
	case *SlotMessage:
		if m.Slot < r.compactFloor {
			// The sender is working below our compaction floor: the
			// slot's instance is gone, but our snapshot covers it.
			out = r.catchupReplyLocked(from)
			break
		}
		if m.Slot > r.maxSeenApplied {
			r.maxSeenApplied = m.Slot
		}
		if v, decided := r.log[m.Slot]; decided {
			if _, live := r.slots[m.Slot]; !live {
				// Decided slot whose instance is gone (recovered from the
				// journal): answer with the decision rather than spinning
				// up a fresh — amnesiac — instance.
				out = r.slotDecideReplyLocked(m.Slot, from, v)
				break
			}
		}
		inner, err := r.inner.DecodeBody(m.InnerKind, m.InnerBody)
		if err == nil {
			node := r.slotLocked(m.Slot)
			out = r.applySlotLocked(m.Slot, node, node.Deliver(from, inner))
			if !r.persistSlotLocked(m.Slot) {
				out = nil
			}
		}
	case *Status:
		if m.Applied > r.maxSeenApplied {
			r.maxSeenApplied = m.Applied
		}
		if m.Applied > r.applied {
			out = []outbound{{to: from, msg: &CatchupRequest{From: r.applied}}}
		}
	case *CatchupRequest:
		if r.applied > m.From {
			out = r.catchupReplyLocked(from)
		}
	case *CatchupReply:
		if r.ls != nil && m.LeaseHolder != nil {
			// The snapshot jump skips the individual grant applies, so
			// the sender exports its lease view as (holder, remaining):
			// durations survive the clock-origin change, and importing at
			// any later instant only shortens the true residual window.
			r.ls.tab.Import(*m.LeaseHolder, m.LeaseRemain, r.ls.now())
		}
		out = r.installSnapshotLocked(m.Applied, m.Store, m.Decided)
	default:
		out = r.applyDetectorLocked(r.det.Deliver(from, msg))
	}
	em := r.emitLocked(out)
	r.mu.Unlock()
	r.completeEmit(em)
}

// catchupReplyLocked builds a snapshot reply for a lagging peer: the
// applied store plus decided values for still-open slots, so a peer that
// missed decide traffic (drops, restarts) learns them without re-running
// those slots.
func (r *Replica) catchupReplyLocked(to consensus.ProcessID) []outbound {
	store := make(map[string]string, len(r.store))
	for k, v := range r.store {
		store[k] = v
	}
	var decided map[int]consensus.Value
	for slot, v := range r.log {
		if slot >= r.applied {
			if decided == nil {
				decided = make(map[int]consensus.Value)
			}
			decided[slot] = v
		}
	}
	reply := &CatchupReply{Applied: r.applied, Store: store, Decided: decided}
	if r.ls != nil {
		if h, remain := r.ls.tab.Export(r.ls.now()); h >= 0 && remain > 0 {
			reply.LeaseHolder = &h
			reply.LeaseRemain = remain
		}
	}
	return []outbound{{to: to, msg: reply}}
}

// installSnapshotLocked adopts a peer's snapshot if it is ahead of us:
// the store replaces ours, slots below the snapshot's applied index are
// discarded, and their waiters are told to retry. Decided values for
// still-open slots are then adopted as ordinary decisions.
func (r *Replica) installSnapshotLocked(applied int, store map[string]string, decided map[int]consensus.Value) []outbound {
	if applied > r.applied {
		r.store = make(map[string]string, len(store))
		for k, v := range store {
			r.store[k] = v
		}
		r.applied = applied
		if applied > r.maxSeenApplied {
			r.maxSeenApplied = applied
		}
		// Discard superseded slot instances and their timers.
		for slot := range r.slots {
			if slot < applied {
				r.dropSlotLocked(slot)
			}
		}
		for slot := range r.log {
			if slot < applied {
				delete(r.log, slot)
			}
		}
		// Waiters on superseded slots cannot learn their slot's value from
		// us anymore; ⊥ tells Execute to retry in a fresh slot. Queued as a
		// wakeup so the notification happens off the critical section.
		wk := wakeup{v: consensus.None}
		for slot, chs := range r.waiters {
			if slot < applied {
				wk.chs = append(wk.chs, chs...)
				delete(r.waiters, slot)
			}
		}
		for slot, chs := range r.appliedW {
			if slot < applied {
				wk.done = append(wk.done, chs...)
				delete(r.appliedW, slot)
			}
		}
		if len(wk.chs) > 0 || len(wk.done) > 0 {
			r.wakes = append(r.wakes, wk)
		}
		// The store jump has no WAL records backing it; checkpoint so a
		// crash right after catchup does not roll the replica back.
		r.writeSnapshotLocked()
	}
	var out []outbound
	for _, slot := range sortedSlots(decided) {
		if slot < r.applied {
			continue
		}
		if _, dup := r.log[slot]; dup {
			continue
		}
		out = append(out, r.decideLocked(slot, decided[slot])...)
	}
	return out
}

// dropSlotLocked removes a slot instance and cancels its timer.
func (r *Replica) dropSlotLocked(slot int) {
	delete(r.slots, slot)
	key := timerKey(slot, core.TimerNewBallot)
	r.gens[key]++
	if t, ok := r.timers[key]; ok {
		t.Stop()
		delete(r.timers, key)
	}
}

// Submit replicates cmd and returns once it is decided and applied at this
// replica. When batching is enabled (EnableBatching) concurrent Submits are
// grouped into one consensus instance.
func (r *Replica) Submit(ctx context.Context, cmd Command) error {
	r.mu.Lock()
	if cmd.ID == "" {
		r.seq++
		cmd.ID = fmt.Sprintf("%s-%d", r.cfg.ID, r.seq)
	}
	b := r.batch
	r.mu.Unlock()
	if b != nil && cmd.Op != OpBatch {
		return b.executeBatched(ctx, cmd)
	}
	slot, err := r.Execute(ctx, cmd)
	if err != nil {
		return err
	}
	if err := r.WaitApplied(ctx, slot); err != nil {
		return err
	}
	if r.takeFenced(slot) {
		// Decided and applied — but a lease grant in an earlier slot beat
		// it there, so the holder may have served reads that miss it. The
		// ack is downgraded to ambiguous (see ErrLeaseFenced).
		return ErrLeaseFenced
	}
	return nil
}

// Execute proposes cmd and blocks until a slot decides it, returning the
// slot index. It retries in subsequent slots when a competing command wins.
func (r *Replica) Execute(ctx context.Context, cmd Command) (int, error) {
	if cmd.ID == "" {
		r.mu.Lock()
		r.seq++
		cmd.ID = fmt.Sprintf("%s-%d", r.cfg.ID, r.seq)
		r.mu.Unlock()
	}
	want, err := cmd.Encode()
	if err != nil {
		return 0, err
	}
	slot := -1
	for {
		var (
			ch  chan consensus.Value
			out []outbound
		)
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return 0, ErrClosed
		}
		if cmd.Op != OpLeaseGrant {
			// Pre-propose lease gate (definite refusal with holder hint);
			// re-checked per retry — a grant can apply between rounds.
			if err := r.leaseRefuseLocked(); err != nil {
				r.mu.Unlock()
				return 0, err
			}
		}
		slot = r.nextFreeSlotLocked(slot)
		if v, decided := r.log[slot]; decided {
			r.mu.Unlock()
			if v == want {
				return slot, nil
			}
			continue
		}
		node := r.slotLocked(slot)
		if slot >= r.propHint {
			r.propHint = slot + 1
		}
		out = r.applySlotLocked(slot, node, node.Propose(want))
		if !r.persistSlotLocked(slot) {
			r.mu.Unlock()
			return 0, ErrClosed
		}
		ch = make(chan consensus.Value, 1)
		r.waiters[slot] = append(r.waiters[slot], ch)
		em := r.emitLocked(out)
		r.mu.Unlock()
		r.completeEmit(em)

		select {
		case v := <-ch:
			if v == want {
				return slot, nil
			}
			// A competing command won this slot; try the next.
		case <-ctx.Done():
			return 0, fmt.Errorf("smr execute: %w", ctx.Err())
		}
	}
}

// nextFreeSlotLocked returns the smallest slot after prev this replica has
// neither seen decided nor already proposed in. freeHint bounds the scan
// from below: decideLocked keeps it past the decided prefix, so the loop is
// O(1) amortized instead of rescanning from prev on every contended submit.
// propHint keeps concurrent local proposals out of each other's slots.
func (r *Replica) nextFreeSlotLocked(prev int) int {
	s := prev + 1
	if s < r.applied {
		s = r.applied
	}
	if s < r.freeHint {
		s = r.freeHint
	}
	if s < r.propHint {
		s = r.propHint
	}
	for {
		if _, decided := r.log[s]; !decided {
			return s
		}
		s++
	}
}

// TransportStats reports the bound transport's counters (false when no
// transport is bound). Surfaced by the server's STATS command and the
// periodic stats line in cmd/kv.
func (r *Replica) TransportStats() (transport.Stats, bool) {
	r.mu.Lock()
	tr := r.tr
	r.mu.Unlock()
	if tr == nil {
		return transport.Stats{}, false
	}
	return tr.Stats(), true
}

// Get reads a key from the local (applied) store state.
func (r *Replica) Get(key string) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.getLocked(key)
}

// getLocked is Get under the lock, shared with LeaseRead so the lease
// validity check and the store read are one atomic step (and lease reads
// honor the chaos harness's stale-read fault injection).
func (r *Replica) getLocked(key string) (string, bool) {
	if r.faultStale {
		if v, ok := r.faultPrev[key]; ok {
			return v, true
		}
	}
	v, ok := r.store[key]
	return v, ok
}

// Applied returns the number of log slots applied to the store.
func (r *Replica) Applied() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied
}

// LogValue returns the decided value of a slot, if any (compacted slots
// report false).
func (r *Replica) LogValue(slot int) (consensus.Value, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.log[slot]
	return v, ok
}

// Compact discards slot instances and log entries below applied−retain and
// raises the compaction floor: stragglers below it are served snapshots
// instead of per-slot messages. Returns the new floor.
func (r *Replica) Compact(retain int) int {
	if retain < 0 {
		retain = 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	floor := r.applied - retain
	if floor <= r.compactFloor {
		return r.compactFloor
	}
	r.compactFloor = floor
	for slot := range r.slots {
		if slot < floor {
			r.dropSlotLocked(slot)
		}
	}
	for slot := range r.log {
		if slot < floor {
			delete(r.log, slot)
		}
	}
	return floor
}

// CompactFloor returns the current compaction floor.
func (r *Replica) CompactFloor() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.compactFloor
}

// SnapshotJSON exports the replica's applied state (for external backup).
func (r *Replica) SnapshotJSON() ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	decided := make(map[int]consensus.Value)
	for slot, v := range r.log {
		if slot >= r.applied {
			decided[slot] = v
		}
	}
	return encodeSnapshot(r.applied, r.store, decided)
}

// InstallSnapshotJSON installs a previously exported state if it is ahead
// of the replica's own.
func (r *Replica) InstallSnapshotJSON(data []byte) error {
	applied, store, decided, err := decodeSnapshot(data)
	if err != nil {
		return fmt.Errorf("smr install snapshot: %w", err)
	}
	r.mu.Lock()
	em := r.emitLocked(r.installSnapshotLocked(applied, store, decided))
	r.mu.Unlock()
	r.completeEmit(em)
	return nil
}

// Close stops timers, drains the outbox, and closes the WAL and transport.
// Channels still registered in the waiter maps are closed here; channels a
// queued wakeup owns were removed from the maps at queue time and are fired
// by the consumer — never both, so no channel is closed twice.
func (r *Replica) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	for _, t := range r.timers {
		t.Stop()
	}
	for _, chs := range r.waiters {
		for _, ch := range chs {
			close(ch)
		}
	}
	r.waiters = make(map[int][]chan consensus.Value)
	for _, chs := range r.appliedW {
		for _, ch := range chs {
			close(ch)
		}
	}
	r.appliedW = make(map[int][]chan struct{})
	tr := r.tr
	b := r.batch
	d := r.dur
	r.mu.Unlock()
	if b != nil {
		b.close()
	}
	// Drain the outbox before touching the WAL or transport: queued entries
	// still commit and send through them. A shared scheduler stays up for
	// the other replicas on it — a barrier flushes everything this replica
	// queued (FIFO: everything ahead of it included) without stopping it.
	if r.ioShared {
		r.io.barrier()
	} else {
		r.io.Close()
	}
	var firstErr error
	if d != nil && d.ownsWAL {
		// Close syncs: a graceful shutdown leaves no torn tail to recover.
		// A shared journal is the runtime's to close, once, after every
		// group.
		if err := d.wal.Close(); err != nil {
			firstErr = err
		}
	}
	if tr != nil {
		if err := tr.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// slotLocked returns (starting if needed) the consensus instance for slot.
func (r *Replica) slotLocked(slot int) *core.Node {
	if node, ok := r.slots[slot]; ok {
		return node
	}
	node := core.NewUnchecked(r.cfg, core.ModeObject, core.DefaultOptions(), r.det)
	r.slots[slot] = node
	// Start the instance: its effects (the new-ballot timer) are applied
	// immediately; any sends it might produce are flushed by the caller.
	r.applyTimersOnlyLocked(slot, node, node.Start())
	r.noteSlotCreatedLocked(slot, node)
	return node
}

// outbound is a deferred transport send.
type outbound struct {
	to  consensus.ProcessID
	msg consensus.Message
}

// applySlotLocked interprets a slot instance's effects.
func (r *Replica) applySlotLocked(slot int, node *core.Node, effects []consensus.Effect) []outbound {
	var out []outbound
	for _, eff := range effects {
		switch eff := eff.(type) {
		case consensus.Send:
			out = append(out, r.slotSendLocked(slot, node, eff.To, eff.Msg)...)
		case consensus.Broadcast:
			for i := 0; i < r.cfg.N; i++ {
				to := consensus.ProcessID(i)
				if to == r.cfg.ID && !eff.Self {
					continue
				}
				out = append(out, r.slotSendLocked(slot, node, to, eff.Msg)...)
			}
		case consensus.StartTimer:
			r.startSlotTimerLocked(slot, node, eff)
		case consensus.StopTimer:
			r.gens[timerKey(slot, eff.Timer)]++
		case consensus.Decide:
			out = append(out, r.decideLocked(slot, eff.Value)...)
		}
	}
	return out
}

// applyTimersOnlyLocked applies Start effects (timers only; Start sends
// nothing in the core protocol).
func (r *Replica) applyTimersOnlyLocked(slot int, node *core.Node, effects []consensus.Effect) {
	for _, eff := range effects {
		if st, ok := eff.(consensus.StartTimer); ok {
			r.startSlotTimerLocked(slot, node, st)
		}
	}
}

// slotSendLocked wraps and routes one slot message; self-addressed messages
// are delivered inline.
func (r *Replica) slotSendLocked(slot int, node *core.Node, to consensus.ProcessID, msg consensus.Message) []outbound {
	if to == r.cfg.ID {
		return r.applySlotLocked(slot, node, node.Deliver(r.cfg.ID, msg))
	}
	wrapped, ok := r.wrapSlotMsgLocked(slot, msg)
	if !ok {
		return nil
	}
	return []outbound{{to: to, msg: wrapped}}
}

// wrapSlotMsgLocked encodes an inner core message into its SlotMessage
// wire form: one marshal of the inner body, no envelope round trip.
func (r *Replica) wrapSlotMsgLocked(slot int, msg consensus.Message) (*SlotMessage, bool) {
	body, err := consensus.MarshalPooled(msg)
	if err != nil {
		return nil, false
	}
	return &SlotMessage{Slot: slot, InnerKind: msg.Kind(), InnerBody: body}, true
}

// slotDecideReplyLocked answers traffic for a decided slot whose instance
// is gone (journal recovery) with the decision itself.
func (r *Replica) slotDecideReplyLocked(slot int, to consensus.ProcessID, v consensus.Value) []outbound {
	wrapped, ok := r.wrapSlotMsgLocked(slot, &core.DecideMsg{Value: v})
	if !ok {
		return nil
	}
	return []outbound{{to: to, msg: wrapped}}
}

// decideLocked records a slot decision, applies ready commands, and wakes
// waiters. With durability enabled, the decision (and the deciding
// instance's final state) is journaled before the command is applied or
// any waiter can observe the outcome.
func (r *Replica) decideLocked(slot int, v consensus.Value) []outbound {
	if _, dup := r.log[slot]; dup {
		return nil
	}
	if !r.persistDecideLocked(slot, v) || !r.persistSlotLocked(slot) {
		return nil
	}
	r.log[slot] = v
	if slot == r.freeHint {
		for {
			r.freeHint++
			if _, decided := r.log[r.freeHint]; !decided {
				break
			}
		}
	}
	before := r.applied
	for {
		next, ok := r.log[r.applied]
		if !ok {
			break
		}
		r.applyCommandLocked(next)
		r.applied++
	}
	// Waiters are detached from the maps here but woken by emitLocked /
	// the outbox consumer — after the decision's WAL records are durable,
	// and off the critical section.
	wk := wakeup{v: v, chs: r.waiters[slot]}
	delete(r.waiters, slot)
	for s, chs := range r.appliedW {
		if s < r.applied {
			wk.done = append(wk.done, chs...)
			delete(r.appliedW, s)
		}
	}
	// A bare no-op that releases no WaitApplied waiter completes only read
	// barriers: any write acknowledgement travels through done channels, so
	// this condition is what keeps the relaxed (critical-only) durability
	// watermark strictly off the write path.
	wk.readOnly = isNoopValue(v.Data) && len(wk.done) == 0
	if len(wk.chs) > 0 || len(wk.done) > 0 {
		r.wakes = append(r.wakes, wk)
	}
	r.maybeSnapshotLocked(r.applied - before)
	return nil
}

// WaitApplied blocks until the given slot has been applied to the store.
func (r *Replica) WaitApplied(ctx context.Context, slot int) error {
	r.mu.Lock()
	if slot < r.applied {
		r.mu.Unlock()
		return nil
	}
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	ch := make(chan struct{})
	r.appliedW[slot] = append(r.appliedW[slot], ch)
	r.mu.Unlock()
	select {
	case <-ch:
		// The channel also closes when the replica shuts down or fails
		// before the slot applies; re-check rather than report success.
		r.mu.Lock()
		applied := slot < r.applied
		r.mu.Unlock()
		if !applied {
			return ErrClosed
		}
		return nil
	case <-ctx.Done():
		return fmt.Errorf("smr wait applied: %w", ctx.Err())
	}
}

// applyCommandLocked applies one decided command to the store.
func (r *Replica) applyCommandLocked(v consensus.Value) {
	cmd, err := DecodeCommand(v)
	if err != nil {
		if r.ls != nil {
			// Unparseable commands still revoke conservatively: an
			// unknown proposer must not leave a lease looking live.
			r.applyLeaseLocked(Command{}, -1)
		}
		return // unparseable command: treated as a no-op
	}
	if r.ls != nil {
		r.applyLeaseLocked(cmd, proposerOf(cmd.ID))
	}
	r.applyDecodedLocked(cmd)
}

func (r *Replica) applyDecodedLocked(cmd Command) {
	switch cmd.Op {
	case OpPut:
		if r.faultStale {
			if old, ok := r.store[cmd.Key]; ok && old != cmd.Val {
				r.faultPrev[cmd.Key] = old
			}
		}
		r.store[cmd.Key] = cmd.Val
	case OpDelete:
		delete(r.store, cmd.Key)
	case OpBatch:
		for _, sub := range cmd.Subs {
			r.applyDecodedLocked(sub)
		}
	}
}

// applyDetectorLocked interprets the Ω detector's effects.
func (r *Replica) applyDetectorLocked(effects []consensus.Effect) []outbound {
	var out []outbound
	for _, eff := range effects {
		switch eff := eff.(type) {
		case consensus.Send:
			if eff.To != r.cfg.ID {
				out = append(out, outbound{to: eff.To, msg: eff.Msg})
			}
		case consensus.Broadcast:
			for i := 0; i < r.cfg.N; i++ {
				to := consensus.ProcessID(i)
				if to == r.cfg.ID {
					continue
				}
				out = append(out, outbound{to: to, msg: eff.Msg})
			}
		case consensus.StartTimer:
			r.startDetectorTimerLocked(eff)
		}
	}
	return out
}

func timerKey(slot int, t consensus.TimerID) string {
	return fmt.Sprintf("s%d/%s", slot, t)
}

func (r *Replica) startSlotTimerLocked(slot int, node *core.Node, eff consensus.StartTimer) {
	key := timerKey(slot, eff.Timer)
	r.gens[key]++
	gen := r.gens[key]
	if t, ok := r.timers[key]; ok {
		t.Stop()
	}
	r.timers[key] = time.AfterFunc(time.Duration(eff.After)*r.tick, func() {
		r.mu.Lock()
		if r.closed || r.gens[key] != gen {
			r.mu.Unlock()
			return
		}
		out := r.applySlotLocked(slot, node, node.Tick(eff.Timer))
		if !r.persistSlotLocked(slot) {
			out = nil
		}
		em := r.emitLocked(out)
		r.mu.Unlock()
		r.completeEmit(em)
	})
}

func (r *Replica) startDetectorTimerLocked(eff consensus.StartTimer) {
	key := "omega/" + string(eff.Timer)
	r.gens[key]++
	gen := r.gens[key]
	if t, ok := r.timers[key]; ok {
		t.Stop()
	}
	r.timers[key] = time.AfterFunc(time.Duration(eff.After)*r.tick, func() {
		r.mu.Lock()
		if r.closed || r.gens[key] != gen {
			r.mu.Unlock()
			return
		}
		em := r.emitLocked(r.applyDetectorLocked(r.det.Tick(eff.Timer)))
		r.mu.Unlock()
		r.completeEmit(em)
	})
}

// emitted is the handle a protocol step carries out of the lock; the
// caller passes it to completeEmit after unlocking. On the outbox path it
// is empty — the I/O was queued under the lock and proceeds asynchronously.
type emitted struct {
	out []outbound // legacy mode: flush synchronously
}

// emitLocked hands the current step's deferred I/O — out plus any wakeups
// queued under the lock — to the outbox, tagged with the WAL index that
// must be durable before the entry's messages leave. The step does NOT
// wait for that I/O: the caller returns while the consumer commits, sends,
// and wakes in FIFO order behind it. That pipelining is the point — while
// one fdatasync runs, later steps keep computing and their entries pile up
// behind it, so the next commit covers them all. (An early version parked
// each step on its own entry's completion; it serialized every protocol
// hop behind a full fsync and benchmarked 4× slower than the in-lock
// baseline at 8 clients.)
//
// In legacy mode wakeups fire inline, under the lock, and the messages are
// returned for a synchronous flush — exactly the pre-overhaul hot path.
func (r *Replica) emitLocked(out []outbound) emitted {
	wakes := r.wakes
	r.wakes = nil
	if r.legacy {
		for _, w := range wakes {
			w.fire(true)
		}
		return emitted{out: out}
	}
	if len(out) == 0 && len(wakes) == 0 {
		return emitted{}
	}
	var idx uint64
	if r.dur != nil && r.dur.policy == wal.SyncAlways {
		idx = r.dur.critical
		for _, w := range wakes {
			if !w.readOnly {
				// Completing a client call asserts full durability of the
				// step; only pure read-barrier wakeups may skip it.
				idx = r.dur.buffered
				break
			}
		}
	}
	r.io.enqueue(outboxEntry{r: r, walIdx: idx, msgs: out, wake: wakes})
	return emitted{}
}

// completeEmit performs the legacy path's synchronous flush. On the outbox
// path the I/O is already queued and nothing remains to do out of the lock.
func (r *Replica) completeEmit(e emitted) {
	if e.out != nil {
		r.flush(e.out)
	}
}

// SyncIO is a barrier: it blocks until every protocol step emitted before
// the call is fully flushed — WAL records committed (under fsync-always),
// outbound messages handed to the transport, waiters woken. The hot path
// pipelines I/O behind Handle/Execute, so a caller that needs "effects
// externally visible now" (tests inspecting a capture transport, orderly
// shutdown sequences) calls SyncIO instead of assuming the triggering call
// implied completion. On a closed or legacy-mode replica there is nothing
// queued and SyncIO returns immediately.
func (r *Replica) SyncIO() {
	r.mu.Lock()
	if r.closed || r.legacy {
		r.mu.Unlock()
		return
	}
	var idx uint64
	if r.dur != nil && r.dur.policy == wal.SyncAlways {
		idx = r.dur.buffered
	}
	done := make(chan struct{})
	r.io.enqueue(outboxEntry{r: r, walIdx: idx, done: done})
	r.mu.Unlock()
	<-done
}

// ioFail poisons the replica after an out-of-lock I/O failure (the deferred
// analogue of a persist failure inside the step) and releases every waiter
// still registered. No-op if the replica is already closed.
func (r *Replica) ioFail(err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	if r.dur != nil {
		r.persistFailLocked(err)
	} else {
		r.closed = true
	}
}

// flush sends out synchronously; the legacy path and WAL-independent
// traffic (status gossip before Start) use it.
func (r *Replica) flush(out []outbound) {
	if len(out) == 0 {
		return
	}
	r.mu.Lock()
	tr := r.tr
	r.mu.Unlock()
	if tr == nil {
		return
	}
	for _, o := range out {
		_ = tr.Send(o.to, o.msg)
	}
}
