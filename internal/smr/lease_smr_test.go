package smr_test

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/smr"
	"repro/internal/transport"
	"repro/internal/wal"
)

// leaseClusterOptions configures startLeaseCluster.
type leaseClusterOptions struct {
	tick  time.Duration
	lease *smr.LeaseOptions // nil: leases stay off
	// durable enables a per-replica WAL under a temp dir (SyncAlways).
	durable bool
	// syncHook, when set, is installed on replica 0's WAL only.
	syncHook func()
}

// startLeaseCluster boots n replicas over an in-process mesh with the
// given lease/durability configuration. The returned dirs are the data
// directories (empty strings without durability).
func startLeaseCluster(t testing.TB, n, f, e int, o leaseClusterOptions) ([]*smr.Replica, []string, *transport.Mesh, func()) {
	t.Helper()
	mesh := transport.NewMesh(n)
	base := ""
	if o.durable {
		base = t.TempDir()
	}
	replicas := make([]*smr.Replica, n)
	dirs := make([]string, n)
	for i := 0; i < n; i++ {
		cfg := consensus.Config{ID: consensus.ProcessID(i), N: n, F: f, E: e, Delta: 10}
		r, err := smr.NewReplica(cfg, o.tick)
		if err != nil {
			t.Fatal(err)
		}
		if o.lease != nil {
			if err := r.EnableLeases(*o.lease); err != nil {
				t.Fatal(err)
			}
		}
		if o.durable {
			dirs[i] = filepath.Join(base, fmt.Sprintf("r%d", i))
			opts := smr.DurabilityOptions{Dir: dirs[i], Policy: wal.SyncAlways}
			if i == 0 {
				opts.SyncHook = o.syncHook
			}
			if _, err := r.EnableDurability(opts); err != nil {
				t.Fatal(err)
			}
		}
		tr, err := mesh.Endpoint(cfg.ID, r.Handle)
		if err != nil {
			t.Fatal(err)
		}
		r.BindTransport(tr)
		replicas[i] = r
	}
	for _, r := range replicas {
		r.Start()
	}
	cleanup := func() {
		for _, r := range replicas {
			if r != nil {
				r.Close()
			}
		}
		mesh.Close()
	}
	return replicas, dirs, mesh, cleanup
}

// TestLeaseLocalReadZeroIO is the tentpole acceptance check: a GETL served
// under a valid lease performs zero transport sends and zero WAL appends.
// The protocol tick is an hour, so every background timer (Ω heartbeats,
// status gossip) is dormant and any I/O measured below would be the read
// path's own.
func TestLeaseLocalReadZeroIO(t *testing.T) {
	replicas, _, _, cleanup := startLeaseCluster(t, 3, 1, 1, leaseClusterOptions{
		tick:    time.Hour,
		lease:   &smr.LeaseOptions{Duration: time.Hour, Epsilon: 50 * time.Millisecond},
		durable: true,
	})
	defer cleanup()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	kv := smr.NewKV(replicas[0])
	if err := kv.Put(ctx, "k", "v"); err != nil {
		t.Fatal(err)
	}
	if err := replicas[0].AcquireLease(ctx); err != nil {
		t.Fatal(err)
	}
	if !replicas[0].HoldsLease() {
		t.Fatal("lease not valid after AcquireLease returned")
	}
	replicas[0].SyncIO()
	time.Sleep(100 * time.Millisecond) // let straggler acks from peers land

	st0, ok := replicas[0].TransportStats()
	if !ok {
		t.Fatal("no transport stats")
	}
	wal0 := replicas[0].Info().WalNextIndex

	const reads = 200
	for i := 0; i < reads; i++ {
		v, found, err := kv.GetLinearizable(ctx, "k")
		if err != nil || !found || v != "v" {
			t.Fatalf("GETL %d = %q, %t, %v", i, v, found, err)
		}
	}

	st1, _ := replicas[0].TransportStats()
	wal1 := replicas[0].Info().WalNextIndex
	if st1.Sends != st0.Sends {
		t.Fatalf("lease reads sent %d transport messages, want 0", st1.Sends-st0.Sends)
	}
	if wal1 != wal0 {
		t.Fatalf("lease reads appended %d WAL records, want 0", wal1-wal0)
	}
	if ls := replicas[0].LeaseStats(); ls.Hits < reads {
		t.Fatalf("lease hits = %d, want >= %d (stats %+v)", ls.Hits, reads, ls)
	}
}

// TestLeaseCrashRestartForgetsLease pins the recovery rule: a replayed own
// grant confers no serving rights (the propose-time anchor died with the
// process), while surviving peers keep refusing their own proposals until
// the crashed holder's lease has conservatively expired.
func TestLeaseCrashRestartForgetsLease(t *testing.T) {
	lo := &smr.LeaseOptions{Duration: 10 * time.Second, Epsilon: 50 * time.Millisecond}
	replicas, dirs, _, cleanup := startLeaseCluster(t, 3, 1, 1, leaseClusterOptions{
		tick: time.Millisecond, lease: lo, durable: true,
	})
	defer cleanup()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	kv := smr.NewKV(replicas[0])
	if err := kv.Put(ctx, "k", "v"); err != nil {
		t.Fatal(err)
	}
	if err := replicas[0].AcquireLease(ctx); err != nil {
		t.Fatal(err)
	}
	if !replicas[0].HoldsLease() {
		t.Fatal("lease not valid after AcquireLease")
	}
	if err := replicas[0].Kill(); err != nil {
		t.Logf("kill: %v", err)
	}

	// Restart the holder from its data directory, isolated on a capture
	// transport: recovery replays the grant from the WAL alone.
	cfg := consensus.Config{ID: 0, N: 3, F: 1, E: 1, Delta: 10}
	r0, err := smr.NewReplica(cfg, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := r0.EnableLeases(*lo); err != nil {
		t.Fatal(err)
	}
	if _, err := r0.EnableDurability(smr.DurabilityOptions{Dir: dirs[0], Policy: wal.SyncAlways}); err != nil {
		t.Fatalf("recovery: %v", err)
	}
	r0.BindTransport(&captureTr{self: 0})
	defer r0.Close()
	replicas[0] = nil

	if r0.HoldsLease() {
		t.Fatal("restarted replica still claims the lease — crash-restart must forget serving rights")
	}
	ls := r0.LeaseStats()
	if !ls.Enabled || ls.Valid {
		t.Fatalf("restarted lease stats = %+v, want enabled and not valid", ls)
	}
	if ls.Holder != 0 {
		t.Fatalf("restarted holder = %d, want 0 (the grant record itself must replay)", ls.Holder)
	}
	if _, _, served := r0.LeaseRead("k"); served {
		t.Fatal("restarted replica served a lease read")
	}

	// A surviving peer is still inside the dead holder's guard window: its
	// own proposals must be refused with the holder hint.
	err = smr.NewKV(replicas[1]).Put(ctx, "k", "v2")
	if !errors.Is(err, smr.ErrLeaseHeld) {
		t.Fatalf("peer write during dead holder's guard = %v, want ErrLeaseHeld", err)
	}
}

// TestLeaseTakeoverRevokesPreviousHolder drives a full handover: a second
// replica grants itself the lease (grant proposals are exempt from the
// refusal gate precisely so takeover is possible), which revokes the first
// holder at every replica, and the regression bite — the deposed holder
// must never again serve a local read, and its own writes are refused with
// the new holder's hint rather than served stale.
func TestLeaseTakeoverRevokesPreviousHolder(t *testing.T) {
	replicas, _, _, cleanup := startLeaseCluster(t, 3, 1, 1, leaseClusterOptions{
		tick:  time.Millisecond,
		lease: &smr.LeaseOptions{Duration: 400 * time.Millisecond, Epsilon: 40 * time.Millisecond},
	})
	defer cleanup()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	kv0 := smr.NewKV(replicas[0])
	if err := kv0.Put(ctx, "k", "v1"); err != nil {
		t.Fatal(err)
	}
	if err := replicas[0].AcquireLease(ctx); err != nil {
		t.Fatal(err)
	}
	if !replicas[0].HoldsLease() {
		t.Fatal("p0 lease not valid")
	}

	// A takeover grant proposed while p0's guard is still active at p1 can
	// anchor an empty serving window (the window is clipped to start at the
	// guard's end but still expires Duration-ε after propose time), so —
	// like the AutoGrant renewal timer — keep re-granting until one lands
	// after the guard lapses and actually opens.
	deadline := time.Now().Add(5 * time.Second)
	for !replicas[1].HoldsLease() {
		if time.Now().After(deadline) {
			t.Fatalf("p1 never became leaseholder (stats %+v)", replicas[1].LeaseStats())
		}
		if err := replicas[1].AcquireLease(ctx); err != nil {
			t.Fatalf("takeover grant: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The takeover grant applied at p0 revoked its lease: no local serving.
	if replicas[0].HoldsLease() {
		t.Fatal("p0 still claims the lease after p1's grant applied")
	}
	if _, _, served := replicas[0].LeaseRead("k"); served {
		t.Fatal("revoked holder served a lease read")
	}
	if h := replicas[0].LeaseStats().Holder; h != 1 {
		t.Fatalf("p0 records holder %d, want 1", h)
	}

	// And p0's own traffic is refused toward the new holder, not executed.
	err := kv0.Put(ctx, "k", "stale-overwrite")
	if !errors.Is(err, smr.ErrLeaseHeld) || !errors.Is(err, smr.ErrRejected) {
		t.Fatalf("write at deposed holder = %v, want ErrLeaseHeld (definite)", err)
	}
	gctx, gcancel := context.WithTimeout(ctx, 2*time.Second)
	defer gcancel()
	_, _, err = kv0.GetLinearizable(gctx, "k")
	if !errors.Is(err, smr.ErrLeaseHeld) {
		t.Fatalf("GETL at deposed holder = %v, want ErrLeaseHeld redirect hint", err)
	}
}

// TestLeaseExpiryUnderFsyncStall pins that a holder whose I/O stalls
// cannot serve past expiry: the lease lapses on the local monotonic clock
// regardless of the stuck WAL, and the fallback read barrier (which needs
// durability) blocks rather than answering from possibly-stale state.
//
// Expiry is driven through the LeaseOptions.Now fake clock, not a
// wall-clock sleep: advancing the shared clock past Duration−ε is exact
// (no scheduling jitter can land the test short of or long past the
// window) and costs no wall time.
func TestLeaseExpiryUnderFsyncStall(t *testing.T) {
	var stall atomic.Bool
	release := make(chan struct{})
	var once sync.Once
	unblock := func() { once.Do(func() { close(release) }) }
	defer unblock()
	hook := func() {
		if stall.Load() {
			<-release
		}
	}
	// All three replicas share one fake lease clock (zero skew; ε still
	// guards the protocol's real-skew story elsewhere).
	var fakeClock atomic.Int64
	replicas, _, _, cleanup := startLeaseCluster(t, 3, 1, 1, leaseClusterOptions{
		tick: time.Millisecond,
		lease: &smr.LeaseOptions{
			Duration: 300 * time.Millisecond,
			Epsilon:  30 * time.Millisecond,
			Now:      func() time.Duration { return time.Duration(fakeClock.Load()) },
		},
		durable:  true,
		syncHook: hook,
	})
	defer cleanup()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	kv := smr.NewKV(replicas[0])
	if err := kv.Put(ctx, "k", "v"); err != nil {
		t.Fatal(err)
	}
	if err := replicas[0].AcquireLease(ctx); err != nil {
		t.Fatal(err)
	}

	stall.Store(true)
	// Inside the window the lease read needs no I/O, stalled or not.
	if v, found, err := kv.GetLinearizable(ctx, "k"); err != nil || !found || v != "v" {
		t.Fatalf("GETL during stall inside window = %q, %t, %v", v, found, err)
	}

	fakeClock.Store(int64(350 * time.Millisecond)) // past Duration−ε on p0's clock
	if replicas[0].HoldsLease() {
		t.Fatal("lease still valid past expiry")
	}
	if _, _, served := replicas[0].LeaseRead("k"); served {
		t.Fatal("expired lease served a read")
	}
	// The fallback barrier needs a no-op round, whose vote record is stuck
	// behind the stalled fsync: the read must block behind the barrier,
	// never answer from possibly-stale state. (The shared round runs on a
	// detached 30s budget, so assert non-completion rather than waiting
	// out a caller deadline.)
	type getlResult struct {
		v   string
		err error
	}
	done := make(chan getlResult, 1)
	go func() {
		v, _, err := kv.GetLinearizable(ctx, "k")
		done <- getlResult{v, err}
	}()
	select {
	case res := <-done:
		t.Fatalf("GETL completed past expiry with fsyncs stalled (= %q, %v) — barrier was skipped", res.v, res.err)
	case <-time.After(500 * time.Millisecond):
	}
	if ls := replicas[0].LeaseStats(); ls.Expired == 0 {
		t.Fatalf("expiry not counted: %+v", ls)
	}
	stall.Store(false)
	unblock()
	// Once fsyncs resume the barrier completes and the read is served.
	if res := <-done; res.err != nil || res.v != "v" {
		t.Fatalf("GETL after fsync release = %q, %v", res.v, res.err)
	}
}

// TestReadCoalescingSharesRounds pins the read-index batching shape with
// leases off entirely: while one GETL's no-op round is pinned at the fsync
// gate, 31 more GETLs arrive; releasing the gate must retire all 32 with
// exactly one more round (the first round's barrier does not cover readers
// that arrived after its no-op was proposed, so they share a second one).
func TestReadCoalescingSharesRounds(t *testing.T) {
	var stall atomic.Bool
	release := make(chan struct{})
	var once sync.Once
	unblock := func() { once.Do(func() { close(release) }) }
	defer unblock()
	hook := func() {
		if stall.Load() {
			<-release
		}
	}
	replicas, _, _, cleanup := startLeaseCluster(t, 3, 1, 1, leaseClusterOptions{
		tick: time.Millisecond, durable: true, syncHook: hook,
	})
	defer cleanup()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	kv := smr.NewKV(replicas[0])
	if err := kv.Put(ctx, "k", "v"); err != nil {
		t.Fatal(err)
	}
	replicas[0].SyncIO()
	base := replicas[0].LeaseStats() // ReadRounds counted with leases off too

	stall.Store(true)
	errs := make(chan error, 32)
	getl := func() {
		_, _, err := kv.GetLinearizable(ctx, "k")
		errs <- err
	}
	go getl()
	// The leader increments ReadRounds before its no-op hits the gate:
	// poll until the first round is provably in flight.
	deadline := time.Now().Add(5 * time.Second)
	for replicas[0].LeaseStats().ReadRounds != base.ReadRounds+1 {
		if time.Now().After(deadline) {
			t.Fatal("first read round never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	for i := 0; i < 31; i++ {
		go getl()
	}
	time.Sleep(200 * time.Millisecond) // joiners only need a mutex append
	stall.Store(false)
	unblock()

	for i := 0; i < 32; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("coalesced GETL: %v", err)
		}
	}
	st := replicas[0].LeaseStats()
	if got := st.ReadRounds - base.ReadRounds; got != 2 {
		t.Fatalf("read rounds = %d, want 2 (stats %+v)", got, st)
	}
	if got := st.ReadCoalesced - base.ReadCoalesced; got != 30 {
		t.Fatalf("coalesced reads = %d, want 30 (stats %+v)", got, st)
	}
}

// TestPerReadNoopBaseline pins the legacy A/B mode: with SetPerReadNoop
// every GETL pays its own round, so N reads are N rounds, none coalesced.
func TestPerReadNoopBaseline(t *testing.T) {
	replicas, _, _, cleanup := startLeaseCluster(t, 3, 1, 1, leaseClusterOptions{
		tick: time.Millisecond,
	})
	defer cleanup()
	replicas[0].SetPerReadNoop(true)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	kv := smr.NewKV(replicas[0])
	if err := kv.Put(ctx, "k", "v"); err != nil {
		t.Fatal(err)
	}
	base := replicas[0].LeaseStats()
	for i := 0; i < 5; i++ {
		if _, _, err := kv.GetLinearizable(ctx, "k"); err != nil {
			t.Fatal(err)
		}
	}
	st := replicas[0].LeaseStats()
	if got := st.ReadRounds - base.ReadRounds; got != 5 {
		t.Fatalf("per-read-noop rounds = %d, want 5", got)
	}
	if st.ReadCoalesced != base.ReadCoalesced {
		t.Fatalf("per-read-noop coalesced %d reads, want 0", st.ReadCoalesced-base.ReadCoalesced)
	}
}

// TestGETLStormUnderRace hammers the lease read path from 64 goroutines
// with concurrent writers at the holder and readers at a non-holder; run
// under -race in CI, it is the data-race net over the lease table, read
// gate, and counters.
func TestGETLStormUnderRace(t *testing.T) {
	replicas, _, _, cleanup := startLeaseCluster(t, 3, 1, 1, leaseClusterOptions{
		tick:  time.Millisecond,
		lease: &smr.LeaseOptions{Duration: 10 * time.Second, Epsilon: 50 * time.Millisecond},
	})
	defer cleanup()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	kv0 := smr.NewKV(replicas[0])
	kv1 := smr.NewKV(replicas[1])
	if err := kv0.Put(ctx, "k", "v0"); err != nil {
		t.Fatal(err)
	}
	if err := replicas[0].AcquireLease(ctx); err != nil {
		t.Fatal(err)
	}

	const goroutines, iters = 64, 20
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*iters)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch {
				case g%8 == 0:
					// Writers at the holder keep the applied state moving.
					if err := kv0.Put(ctx, "k", fmt.Sprintf("v%d-%d", g, i)); err != nil {
						errs <- fmt.Errorf("put: %w", err)
					}
				case g%8 == 1:
					// Readers at a guarded non-holder: served after a
					// barrier or refused toward the holder — never racy.
					if _, _, err := kv1.GetLinearizable(ctx, "k"); err != nil && !errors.Is(err, smr.ErrLeaseHeld) {
						errs <- fmt.Errorf("getl@p1: %w", err)
					}
				default:
					if v, found, err := kv0.GetLinearizable(ctx, "k"); err != nil || !found || v == "" {
						errs <- fmt.Errorf("getl@p0 = %q, %t, %w", v, found, err)
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if ls := replicas[0].LeaseStats(); ls.Hits == 0 {
		t.Fatalf("storm never hit the lease: %+v", ls)
	}
}

// TestLeaseHeldRedirectMovesClientToHolder wires the whole tier-3 path: a
// PreferLeader session client dialed at a guarded non-holder gets the
// "lease held by replica N" refusal, re-sticks to the named holder, and
// its GETLs become local lease hits there. The legacy client classifies
// the same refusal as a definite rejection.
func TestLeaseHeldRedirectMovesClientToHolder(t *testing.T) {
	replicas, _, _, cleanup := startLeaseCluster(t, 3, 1, 1, leaseClusterOptions{
		tick:  time.Millisecond,
		lease: &smr.LeaseOptions{Duration: 10 * time.Second, Epsilon: 50 * time.Millisecond},
	})
	defer cleanup()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := smr.NewKV(replicas[0]).Put(ctx, "k", "v"); err != nil {
		t.Fatal(err)
	}
	if err := replicas[1].AcquireLease(ctx); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for replicas[0].LeaseStats().Holder != 1 {
		if time.Now().After(deadline) {
			t.Fatal("p0 never applied p1's grant")
		}
		time.Sleep(2 * time.Millisecond)
	}

	addrs := make([]string, 3)
	for i, r := range replicas {
		srv, err := smr.NewServer(r, "127.0.0.1:0", 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		addrs[i] = srv.Addr()
	}

	sc, err := smr.NewSessionClient(addrs, smr.SessionOptions{
		Timeout: 10 * time.Second, Depth: 8, PreferLeader: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	// The client starts on addrs[0]; p0's Ω hint is itself (lowest id), so
	// only the lease refusal can move the session.
	if v, err := sc.GetLinearizable("k"); err != nil || v != "v" {
		t.Fatalf("GETL through redirect = %q, %v", v, err)
	}
	if got := sc.Proxy(); got != addrs[1] {
		t.Fatalf("client proxy = %s, want the leaseholder %s", got, addrs[1])
	}
	if hits := replicas[1].LeaseStats().Hits; hits == 0 {
		t.Fatal("redirected GETL did not hit the holder's lease")
	}
	// And the STATS line at the holder now carries the lease suffix.
	stats, err := sc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !containsField(stats, "lease_valid=true") {
		t.Fatalf("STATS missing lease suffix: %q", stats)
	}

	// Legacy client pinned to the guarded non-holder: the refusal is a
	// definite rejection carrying the holder in its text.
	lc, err := smr.NewClient([]string{addrs[0]}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	if _, err := lc.GetLinearizable("k"); err == nil || !errors.Is(err, smr.ErrRejected) {
		t.Fatalf("legacy GETL at guarded non-holder = %v, want definite rejection", err)
	}
}

// containsField reports whether a space-separated stats line carries the
// given key=value field.
func containsField(line, field string) bool {
	for _, f := range strings.Fields(line) {
		if f == field {
			return true
		}
	}
	return false
}
