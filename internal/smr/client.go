package smr

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"
)

// Client errors, matchable with errors.Is.
var (
	ErrNoProxies = errors.New("smr client: no reachable proxy")
	ErrNotFound  = errors.New("smr client: key not found")

	// ErrMaybeApplied marks a failed write whose outcome is unknown: the
	// request (may have) reached a server, so it may have been replicated
	// and applied even though no acknowledgement came back. History
	// checkers must treat such writes as concurrent with everything after
	// their invocation (see internal/linear's ambiguous outcome).
	ErrMaybeApplied = errors.New("smr client: outcome unknown (the request may have been applied)")
	// ErrRejected marks a failed request that definitely did NOT execute —
	// it never reached a server, or the server refused it before proposing
	// (usage errors, unknown commands). Safe to drop from a history.
	ErrRejected = errors.New("smr client: request was not applied")
)

// outcomeError wraps a request failure with its applied-or-not verdict;
// errors.Is(err, ErrMaybeApplied) / errors.Is(err, ErrRejected) read it
// back. Every failure is exactly one of the two.
type outcomeError struct {
	cause error
	maybe bool
}

func (e *outcomeError) Error() string {
	if e.maybe {
		return e.cause.Error() + " [outcome unknown: may have been applied]"
	}
	return e.cause.Error()
}

func (e *outcomeError) Unwrap() error { return e.cause }

func (e *outcomeError) Is(target error) bool {
	switch target {
	case ErrMaybeApplied:
		return e.maybe
	case ErrRejected:
		return !e.maybe
	}
	return false
}

// ambiguousReply classifies an ERR reply line: replies the server emits
// before proposing anything (malformed requests) are definite rejections;
// every other error — a server-side timeout above all — arrived after the
// command may have entered consensus, so the write may still apply.
func ambiguousReply(reply string) bool {
	definite := []string{
		"ERR usage:", "ERR unknown command", "ERR empty",
		// Session-protocol refusals issued before the command is parsed
		// or queued: nothing entered consensus.
		"ERR line too long", "ERR busy", "ERR bad frame",
		// A lease-held refusal happens before the command is proposed
		// (internal/lease): the named leaseholder must be dialed instead.
		"ERR lease held",
	}
	for _, d := range definite {
		if strings.HasPrefix(reply, d) {
			return false
		}
	}
	return true
}

// Client talks the Server line protocol and fails over between proxies: it
// sticks to one replica (its proxy, in the paper's sense) while that
// replica answers, and rotates to the next address when it stops.
type Client struct {
	addrs   []string
	timeout time.Duration

	mu   sync.Mutex
	cur  int
	conn net.Conn
	rd   *bufio.Reader
}

// NewClient builds a client over the given proxy addresses.
func NewClient(addrs []string, opTimeout time.Duration) (*Client, error) {
	if len(addrs) == 0 {
		return nil, ErrNoProxies
	}
	if opTimeout <= 0 {
		opTimeout = 30 * time.Second
	}
	return &Client{addrs: addrs, timeout: opTimeout}, nil
}

// Put replicates a write through the current proxy. A non-nil error
// matches exactly one of ErrMaybeApplied / ErrRejected (errors.Is). Keys
// containing spaces or control characters, and values containing line
// terminators, are rejected here: the line protocol cannot carry them,
// and a value like "v\nDEL k" would otherwise inject a second command
// into the stream.
func (c *Client) Put(key, val string) error {
	if err := checkPut(key, val); err != nil {
		return err
	}
	return c.write("PUT " + key + " " + val)
}

// Delete removes a key through the current proxy. Errors carry the same
// applied-or-not verdict as Put.
func (c *Client) Delete(key string) error {
	if err := checkKey(key); err != nil {
		return &outcomeError{cause: err, maybe: false}
	}
	return c.write("DEL " + key)
}

// write runs one mutating command and classifies any failure: a request
// that may have left this process is maybe-applied; one that never did, or
// that the server refused before proposing, is rejected.
func (c *Client) write(line string) error {
	reply, sent, err := c.roundTrip(line)
	if err != nil {
		return &outcomeError{cause: err, maybe: sent}
	}
	if reply != "OK" {
		return &outcomeError{
			cause: fmt.Errorf("smr client: %s", reply),
			maybe: ambiguousReply(reply),
		}
	}
	return nil
}

// Get reads a key through the current proxy from the proxy's local applied
// state; the reply can lag concurrent writes. Use GetLinearizable for a
// read that observes every completed write.
func (c *Client) Get(key string) (string, error) {
	if err := checkKey(key); err != nil {
		return "", &outcomeError{cause: err, maybe: false}
	}
	return c.read("GET " + key)
}

// GetLinearizable reads a key with linearizable semantics (the server
// replicates a no-op through consensus before reading).
func (c *Client) GetLinearizable(key string) (string, error) {
	if err := checkKey(key); err != nil {
		return "", &outcomeError{cause: err, maybe: false}
	}
	return c.read("GETL " + key)
}

func (c *Client) read(line string) (string, error) {
	reply, sent, err := c.roundTrip(line)
	if err != nil {
		return "", &outcomeError{cause: err, maybe: sent}
	}
	switch {
	case strings.HasPrefix(reply, "VAL "):
		return strings.TrimPrefix(reply, "VAL "), nil
	case reply == "NONE":
		return "", ErrNotFound
	default:
		return "", &outcomeError{
			cause: fmt.Errorf("smr client: %s", reply),
			maybe: ambiguousReply(reply),
		}
	}
}

// Stats fetches the current proxy replica's transport counters line
// (the server's STATS command). Failures carry the same
// ErrMaybeApplied/ErrRejected verdict as every other operation — STATS
// never mutates, so the verdict is informational, but the "every failure
// is exactly one of the two" invariant holds for all client errors.
func (c *Client) Stats() (string, error) {
	return c.prefixed("STATS")
}

// Info fetches the current proxy replica's operational summary line
// (applied index, open slots, WAL and snapshot state; the server's INFO
// command), with Stats's error contract.
func (c *Client) Info() (string, error) {
	return c.prefixed("INFO")
}

// prefixed runs a command whose success reply echoes the verb as prefix,
// classifying failures like read does.
func (c *Client) prefixed(cmd string) (string, error) {
	reply, sent, err := c.roundTrip(cmd)
	if err != nil {
		return "", &outcomeError{cause: err, maybe: sent}
	}
	if !strings.HasPrefix(reply, cmd+" ") {
		return "", &outcomeError{
			cause: fmt.Errorf("smr client: %s", reply),
			maybe: ambiguousReply(reply),
		}
	}
	return strings.TrimPrefix(reply, cmd+" "), nil
}

// Proxy returns the address of the proxy currently in use.
func (c *Client) Proxy() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.addrs[c.cur]
}

// Close drops the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		err := c.conn.Close()
		c.conn = nil
		return err
	}
	return nil
}

// roundTrip sends one line and reads one reply, failing over across
// proxies (each tried once per operation). sent reports whether the
// request line may have reached a server on some attempt — once a write
// on an established connection is attempted, bytes may be in flight even
// when the write or the reply read errors, so the command may execute.
// Note the failover hazard this implies: an attempt after a sent attempt
// re-submits the command as a new proposal, so a write can apply twice.
// Callers that need at-most-once semantics use a single-address client.
func (c *Client) roundTrip(line string) (reply string, sent bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var lastErr error = ErrNoProxies
	for attempt := 0; attempt < len(c.addrs); attempt++ {
		if c.conn == nil {
			conn, err := net.DialTimeout("tcp", c.addrs[c.cur], c.timeout)
			if err != nil {
				lastErr = err
				c.rotateLocked()
				continue
			}
			c.conn = conn
			c.rd = bufio.NewReader(conn)
		}
		c.conn.SetDeadline(time.Now().Add(c.timeout))
		if _, err := fmt.Fprintln(c.conn, line); err != nil {
			lastErr = err
			sent = true // a partial write may still deliver the line
			c.dropLocked()
			continue
		}
		sent = true
		raw, err := c.rd.ReadString('\n')
		if err != nil {
			lastErr = err
			c.dropLocked()
			continue
		}
		return strings.TrimRight(raw, "\r\n"), sent, nil
	}
	return "", sent, fmt.Errorf("smr client: all proxies failed: %w", lastErr)
}

// dropLocked closes the current connection and rotates to the next proxy.
func (c *Client) dropLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	c.rotateLocked()
}

func (c *Client) rotateLocked() {
	c.cur = (c.cur + 1) % len(c.addrs)
}
