package smr

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"
)

// Client errors, matchable with errors.Is.
var (
	ErrNoProxies = errors.New("smr client: no reachable proxy")
	ErrNotFound  = errors.New("smr client: key not found")
)

// Client talks the Server line protocol and fails over between proxies: it
// sticks to one replica (its proxy, in the paper's sense) while that
// replica answers, and rotates to the next address when it stops.
type Client struct {
	addrs   []string
	timeout time.Duration

	mu   sync.Mutex
	cur  int
	conn net.Conn
	rd   *bufio.Reader
}

// NewClient builds a client over the given proxy addresses.
func NewClient(addrs []string, opTimeout time.Duration) (*Client, error) {
	if len(addrs) == 0 {
		return nil, ErrNoProxies
	}
	if opTimeout <= 0 {
		opTimeout = 30 * time.Second
	}
	return &Client{addrs: addrs, timeout: opTimeout}, nil
}

// Put replicates a write through the current proxy.
func (c *Client) Put(key, val string) error {
	reply, err := c.roundTrip(fmt.Sprintf("PUT %s %s", key, val))
	if err != nil {
		return err
	}
	if reply != "OK" {
		return fmt.Errorf("smr client: %s", reply)
	}
	return nil
}

// Get reads a key through the current proxy.
func (c *Client) Get(key string) (string, error) {
	reply, err := c.roundTrip("GET " + key)
	if err != nil {
		return "", err
	}
	switch {
	case strings.HasPrefix(reply, "VAL "):
		return strings.TrimPrefix(reply, "VAL "), nil
	case reply == "NONE":
		return "", ErrNotFound
	default:
		return "", fmt.Errorf("smr client: %s", reply)
	}
}

// Delete removes a key through the current proxy.
func (c *Client) Delete(key string) error {
	reply, err := c.roundTrip("DEL " + key)
	if err != nil {
		return err
	}
	if reply != "OK" {
		return fmt.Errorf("smr client: %s", reply)
	}
	return nil
}

// Stats fetches the current proxy replica's transport counters line
// (the server's STATS command).
func (c *Client) Stats() (string, error) {
	reply, err := c.roundTrip("STATS")
	if err != nil {
		return "", err
	}
	if !strings.HasPrefix(reply, "STATS ") {
		return "", fmt.Errorf("smr client: %s", reply)
	}
	return strings.TrimPrefix(reply, "STATS "), nil
}

// Info fetches the current proxy replica's operational summary line
// (applied index, open slots, WAL and snapshot state; the server's INFO
// command).
func (c *Client) Info() (string, error) {
	reply, err := c.roundTrip("INFO")
	if err != nil {
		return "", err
	}
	if !strings.HasPrefix(reply, "INFO ") {
		return "", fmt.Errorf("smr client: %s", reply)
	}
	return strings.TrimPrefix(reply, "INFO "), nil
}

// Proxy returns the address of the proxy currently in use.
func (c *Client) Proxy() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.addrs[c.cur]
}

// Close drops the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		err := c.conn.Close()
		c.conn = nil
		return err
	}
	return nil
}

// roundTrip sends one line and reads one reply, failing over across proxies
// (each tried once per operation).
func (c *Client) roundTrip(line string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var lastErr error = ErrNoProxies
	for attempt := 0; attempt < len(c.addrs); attempt++ {
		if c.conn == nil {
			conn, err := net.DialTimeout("tcp", c.addrs[c.cur], c.timeout)
			if err != nil {
				lastErr = err
				c.rotateLocked()
				continue
			}
			c.conn = conn
			c.rd = bufio.NewReader(conn)
		}
		c.conn.SetDeadline(time.Now().Add(c.timeout))
		if _, err := fmt.Fprintln(c.conn, line); err != nil {
			lastErr = err
			c.dropLocked()
			continue
		}
		reply, err := c.rd.ReadString('\n')
		if err != nil {
			lastErr = err
			c.dropLocked()
			continue
		}
		return strings.TrimRight(reply, "\r\n"), nil
	}
	return "", fmt.Errorf("smr client: all proxies failed: %w", lastErr)
}

// dropLocked closes the current connection and rotates to the next proxy.
func (c *Client) dropLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	c.rotateLocked()
}

func (c *Client) rotateLocked() {
	c.cur = (c.cur + 1) % len(c.addrs)
}
