package smr

import (
	"context"
	"fmt"
	"sort"
)

// KV is the client-facing API of the replicated key-value store, bound to
// one replica acting as this client's proxy (Schneider's SMR pattern, as in
// the paper's introduction).
type KV struct {
	proxy *Replica
}

// NewKV wraps a replica as a key-value client.
func NewKV(proxy *Replica) *KV { return &KV{proxy: proxy} }

// Put replicates a write and returns once it is decided and applied at the
// proxy.
func (kv *KV) Put(ctx context.Context, key, val string) error {
	return kv.execute(ctx, Command{Op: OpPut, Key: key, Val: val})
}

// Delete replicates a deletion.
func (kv *KV) Delete(ctx context.Context, key string) error {
	return kv.execute(ctx, Command{Op: OpDelete, Key: key})
}

// PutAll replicates several writes atomically: they occupy one log slot (an
// OpBatch command), so every replica applies either all of them or none,
// with no interleaved foreign writes.
func (kv *KV) PutAll(ctx context.Context, kvs map[string]string) error {
	if len(kvs) == 0 {
		return nil
	}
	keys := make([]string, 0, len(kvs))
	for k := range kvs {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic encoding
	subs := make([]Command, 0, len(kvs))
	for i, k := range keys {
		subs = append(subs, Command{ID: fmt.Sprintf("sub-%d", i), Op: OpPut, Key: k, Val: kvs[k]})
	}
	return kv.execute(ctx, Command{Op: OpBatch, Subs: subs})
}

func (kv *KV) execute(ctx context.Context, cmd Command) error {
	return kv.proxy.Submit(ctx, cmd)
}

// Get reads from the proxy's applied state. Reads are served locally and
// reflect every write this client performed through the same proxy (the
// proxy applies a slot before acknowledging it). Reads of other clients'
// writes may lag; use GetLinearizable for a read that observes every write
// acknowledged anywhere before it started.
func (kv *KV) Get(key string) (string, bool) {
	return kv.proxy.Get(key)
}

// GetLinearizable performs a linearizable read, three-tiered:
//
//  1. The proxy holds a valid lease → serve from local applied state with
//     zero network round trips (the lease grant was replicated through
//     consensus, so every other replica refuses to acknowledge commands
//     the leaseholder has not applied — see internal/lease).
//  2. No lease anywhere → replicate a no-op read barrier and read local
//     state; concurrent reads coalesce behind shared rounds (readbarrier.go).
//  3. Another replica holds the lease → the barrier is refused with
//     ErrLeaseHeld carrying the holder ("ERR lease held by replica N" on
//     the wire), which SessionClient's PreferLeader redial follows to the
//     leaseholder.
//
// Any write acknowledged before this call started is visible in all tiers:
// tier 1 because acknowledgements elsewhere are refused or fenced while
// the lease is live, tier 2 because an acknowledged write's slot decides
// below the barrier no-op's slot.
func (kv *KV) GetLinearizable(ctx context.Context, key string) (string, bool, error) {
	if v, ok, served := kv.proxy.LeaseRead(key); served {
		return v, ok, nil
	}
	if err := kv.proxy.ReadBarrier(ctx); err != nil {
		return "", false, err
	}
	v, ok := kv.proxy.Get(key)
	return v, ok, nil
}
