package smr_test

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/smr"
)

func newTestSessionClient(t *testing.T, addrs []string, opts smr.SessionOptions) *smr.SessionClient {
	t.Helper()
	c, err := smr.NewSessionClient(addrs, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestSessionNegotiation pins the HELLO/OHAI handshake: the client must
// come up in pipelined mode against a session server and report the
// server's replica id and Ω-leader hint.
func TestSessionNegotiation(t *testing.T) {
	addrs, _, cleanup := startServedCluster(t, 3, 1, 1)
	defer cleanup()
	c := newTestSessionClient(t, addrs[:1], smr.SessionOptions{Timeout: 10 * time.Second})
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if !c.Pipelined() {
		t.Fatal("session client fell back to legacy against a session server")
	}
	if l := c.LeaderHint(); l < 0 || l > 2 {
		t.Fatalf("leader hint = %d, want a replica id", l)
	}
}

// TestSessionPutGetDelete runs the basic KV workflow through a pipelined
// session.
func TestSessionPutGetDelete(t *testing.T) {
	addrs, _, cleanup := startServedCluster(t, 3, 1, 1)
	defer cleanup()
	c := newTestSessionClient(t, addrs, smr.SessionOptions{Timeout: 10 * time.Second})

	if err := c.Put("color", "teal"); err != nil {
		t.Fatal(err)
	}
	if got, err := c.Get("color"); err != nil || got != "teal" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if got, err := c.GetLinearizable("color"); err != nil || got != "teal" {
		t.Fatalf("GetLinearizable = %q, %v", got, err)
	}
	if err := c.Delete("color"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("color"); !errors.Is(err, smr.ErrNotFound) {
		t.Fatalf("Get after delete = %v, want ErrNotFound", err)
	}
	if line, err := c.Stats(); err != nil || !strings.Contains(line, "sends=") {
		t.Fatalf("Stats = %q, %v", line, err)
	}
	if line, err := c.Info(); err != nil || !strings.Contains(line, "applied=") {
		t.Fatalf("Info = %q, %v", line, err)
	}
}

// TestWhitespaceExactRoundTrip pins the strings.Fields parsing bug: a
// value with consecutive spaces, tabs, or trailing whitespace must come
// back byte-for-byte identical — the old server rewrote "a  b" to "a b".
func TestWhitespaceExactRoundTrip(t *testing.T) {
	addrs, _, cleanup := startServedCluster(t, 3, 1, 1)
	defer cleanup()

	values := []string{
		"a  b",            // consecutive spaces (the reported corruption)
		"tab\tseparated",  // tabs (strings.Fields split on these too)
		" leading",        // leading space
		"trailing  ",      // trailing run
		"a \t mix\t\t of", // everything at once
		"",                // empty value
	}
	check := func(t *testing.T, put func(k, v string) error, get func(k string) (string, error)) {
		for i, v := range values {
			key := fmt.Sprintf("ws%d", i)
			if err := put(key, v); err != nil {
				t.Fatalf("Put(%q, %q): %v", key, v, err)
			}
			got, err := get(key)
			if err != nil {
				t.Fatalf("Get(%q): %v", key, err)
			}
			if got != v {
				t.Fatalf("value %q round-tripped as %q", v, got)
			}
		}
	}
	t.Run("legacy client", func(t *testing.T) {
		c, err := smr.NewClient(addrs[:1], 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		check(t, c.Put, c.Get)
	})
	t.Run("session client", func(t *testing.T) {
		c := newTestSessionClient(t, addrs[:1], smr.SessionOptions{Timeout: 10 * time.Second})
		check(t, c.Put, c.Get)
	})
}

// TestInjectionRejected pins the command-injection fix: keys and values
// carrying line terminators (or keys carrying spaces) must be refused
// client-side as definite rejections, before any bytes reach a server.
func TestInjectionRejected(t *testing.T) {
	addrs, _, cleanup := startServedCluster(t, 3, 1, 1)
	defer cleanup()

	requireRejected := func(t *testing.T, err error) {
		t.Helper()
		if err == nil {
			t.Fatal("expected a rejection")
		}
		if !errors.Is(err, smr.ErrRejected) || errors.Is(err, smr.ErrMaybeApplied) {
			t.Fatalf("err = %v; want ErrRejected, not maybe-applied", err)
		}
	}
	lc, err := smr.NewClient(addrs[:1], 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	sc := newTestSessionClient(t, addrs[:1], smr.SessionOptions{Timeout: 10 * time.Second})

	if err := sc.Put("k", "safe"); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		name string
		put  func(k, v string) error
		del  func(k string) error
	}{{"legacy", lc.Put, lc.Delete}, {"session", sc.Put, sc.Delete}} {
		t.Run(c.name, func(t *testing.T) {
			requireRejected(t, c.put("k", "v\nDEL k"))
			requireRejected(t, c.put("k", "v\r\nDEL k"))
			requireRejected(t, c.put("k\nDEL k", "v"))
			requireRejected(t, c.put("bad key", "v"))
			requireRejected(t, c.put("bad\tkey", "v"))
			requireRejected(t, c.put("", "v"))
			requireRejected(t, c.del("k\nPUT k gone"))
		})
	}
	// The injection attempts must not have executed their payloads.
	if got, err := sc.GetLinearizable("k"); err != nil || got != "safe" {
		t.Fatalf("k = %q, %v after injection attempts; want %q intact", got, err, "safe")
	}
}

// TestStatsErrorTaxonomy pins satellite 3: Stats/Info failures must obey
// the every-failure-is-exactly-one-of-the-two invariant instead of
// leaking raw transport errors.
func TestStatsErrorTaxonomy(t *testing.T) {
	requireVerdict := func(t *testing.T, err error, maybe bool) {
		t.Helper()
		if err == nil {
			t.Fatal("expected an error")
		}
		if errors.Is(err, smr.ErrMaybeApplied) != maybe || errors.Is(err, smr.ErrRejected) == maybe {
			t.Fatalf("err %v: ErrMaybeApplied=%t ErrRejected=%t, want maybe=%t",
				err, errors.Is(err, smr.ErrMaybeApplied), errors.Is(err, smr.ErrRejected), maybe)
		}
	}

	t.Run("dial failure is rejected", func(t *testing.T) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close()
		c, err := smr.NewClient([]string{addr}, 500*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		_, err = c.Stats()
		requireVerdict(t, err, false)
		_, err = c.Info()
		requireVerdict(t, err, false)
	})
	t.Run("cut after send is maybe-applied", func(t *testing.T) {
		addr := scriptedServer(t, func(string) *string { return nil })
		c, err := smr.NewClient([]string{addr}, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		_, err = c.Stats()
		requireVerdict(t, err, true)
	})
	t.Run("weird reply classifies by content", func(t *testing.T) {
		addr := scriptedServer(t, func(string) *string { return str("ERR unknown command STATS") })
		c, err := smr.NewClient([]string{addr}, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		_, err = c.Stats()
		requireVerdict(t, err, false)
	})
	t.Run("session client matches", func(t *testing.T) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close()
		c := newTestSessionClient(t, []string{addr}, smr.SessionOptions{Timeout: 500 * time.Millisecond})
		_, err = c.Stats()
		requireVerdict(t, err, false)
	})
}

// TestSessionLegacyFallback runs the session client against a v1-only
// server (the scripted server answers HELLO the way the old binary
// would) and checks it degrades to working one-at-a-time mode.
func TestSessionLegacyFallback(t *testing.T) {
	var mu sync.Mutex
	store := map[string]string{}
	addr := scriptedServer(t, func(line string) *string {
		fields := strings.Fields(line)
		if len(fields) == 0 {
			return str("ERR empty command")
		}
		mu.Lock()
		defer mu.Unlock()
		switch fields[0] {
		case "HELLO":
			return str("ERR unknown command HELLO")
		case "PUT":
			store[fields[1]] = strings.Join(fields[2:], " ")
			return str("OK")
		case "GET":
			if v, ok := store[fields[1]]; ok {
				return str("VAL " + v)
			}
			return str("NONE")
		default:
			return str("ERR unknown command " + fields[0])
		}
	})
	c := newTestSessionClient(t, []string{addr}, smr.SessionOptions{Timeout: 2 * time.Second})
	if err := c.Put("k", "v1-value"); err != nil {
		t.Fatal(err)
	}
	if c.Pipelined() {
		t.Fatal("client claims pipelined mode against a v1 server")
	}
	if c.LeaderHint() != -1 {
		t.Fatalf("leader hint = %d on a legacy session, want -1", c.LeaderHint())
	}
	if got, err := c.Get("k"); err != nil || got != "v1-value" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	// Async writes still work (executed synchronously underneath).
	if err := c.PutAsync("k2", "v2").Err(); err != nil {
		t.Fatal(err)
	}
	if got, err := c.Get("k2"); err != nil || got != "v2" {
		t.Fatalf("Get(k2) = %q, %v", got, err)
	}
}

// sessionScriptServer speaks just enough of the v2 protocol for failure
// tests: it accepts HELLO, then hands each frame to reply; returning nil
// closes the connection (the mid-request crash).
func sessionScriptServer(t *testing.T, reply func(tag, cmd string) *string) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				sc := bufio.NewScanner(conn)
				if !sc.Scan() || !strings.HasPrefix(sc.Text(), "HELLO") {
					return
				}
				fmt.Fprintln(conn, "OHAI 2 0 0")
				for sc.Scan() {
					tag, cmd, _ := strings.Cut(sc.Text(), " ")
					r := reply(tag, cmd)
					if r == nil {
						return
					}
					if *r != "" {
						fmt.Fprintf(conn, "%s %s\n", tag, *r)
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestSessionFailoverVerdicts pins the in-flight failure rules: a write
// whose frame reached a dying connection is maybe-applied; a write the
// client never managed to send anywhere is rejected; reads retry onto the
// next proxy transparently.
func TestSessionFailoverVerdicts(t *testing.T) {
	t.Run("sent write dies maybe-applied", func(t *testing.T) {
		addr := sessionScriptServer(t, func(tag, cmd string) *string { return nil })
		c := newTestSessionClient(t, []string{addr}, smr.SessionOptions{Timeout: 2 * time.Second})
		err := c.Put("k", "v")
		if !errors.Is(err, smr.ErrMaybeApplied) {
			t.Fatalf("Put on dying session = %v, want ErrMaybeApplied", err)
		}
	})
	t.Run("unreachable proxy rejects", func(t *testing.T) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close()
		c := newTestSessionClient(t, []string{addr}, smr.SessionOptions{Timeout: 500 * time.Millisecond})
		if err := c.Put("k", "v"); !errors.Is(err, smr.ErrRejected) {
			t.Fatalf("Put on unreachable proxy = %v, want ErrRejected", err)
		}
	})
	t.Run("reads fail over to the next proxy", func(t *testing.T) {
		dead := sessionScriptServer(t, func(tag, cmd string) *string { return nil })
		var mu sync.Mutex
		served := 0
		alive := sessionScriptServer(t, func(tag, cmd string) *string {
			mu.Lock()
			served++
			mu.Unlock()
			return str("VAL recovered")
		})
		c := newTestSessionClient(t, []string{dead, alive}, smr.SessionOptions{Timeout: 2 * time.Second})
		got, err := c.Get("k")
		if err != nil || got != "recovered" {
			t.Fatalf("Get across failover = %q, %v", got, err)
		}
		mu.Lock()
		defer mu.Unlock()
		if served == 0 {
			t.Fatal("second proxy never served the retried read")
		}
	})
	t.Run("reply timeout rotates and is maybe-applied", func(t *testing.T) {
		addr := sessionScriptServer(t, func(tag, cmd string) *string {
			return str("") // swallow: no reply, connection stays open
		})
		c := newTestSessionClient(t, []string{addr}, smr.SessionOptions{Timeout: 300 * time.Millisecond})
		if err := c.Put("k", "v"); !errors.Is(err, smr.ErrMaybeApplied) {
			t.Fatalf("timed-out Put = %v, want ErrMaybeApplied", err)
		}
	})
}

// TestSessionOutOfOrderCompletion proves the demux actually demultiplexes:
// a server that answers tag 2 before tag 1 must still resolve each caller
// with its own reply.
func TestSessionOutOfOrderCompletion(t *testing.T) {
	var mu sync.Mutex
	var held *string // the swallowed first GET's tag
	var heldConn net.Conn
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		sc := bufio.NewScanner(conn)
		sc.Scan() // HELLO
		fmt.Fprintln(conn, "OHAI 2 0 0")
		for sc.Scan() {
			tag, cmd, _ := strings.Cut(sc.Text(), " ")
			mu.Lock()
			if strings.HasPrefix(cmd, "GET slow") && held == nil {
				tagCopy := tag
				held = &tagCopy
				heldConn = conn
				mu.Unlock()
				continue // hold the first reply back
			}
			fmt.Fprintf(conn, "%s VAL fast\n", tag)
			if held != nil {
				fmt.Fprintf(heldConn, "%s VAL slow\n", *held)
				held = nil
			}
			mu.Unlock()
		}
	}()
	c := newTestSessionClient(t, []string{ln.Addr().String()}, smr.SessionOptions{Timeout: 5 * time.Second})

	var wg sync.WaitGroup
	var slowVal, fastVal string
	var slowErr, fastErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		slowVal, slowErr = c.Get("slow")
	}()
	// Make sure the slow GET is in flight before the fast one.
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		inFlight := held != nil
		mu.Unlock()
		if inFlight {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slow GET never reached the server")
		}
		time.Sleep(time.Millisecond)
	}
	fastVal, fastErr = c.Get("fast")
	wg.Wait()
	if fastErr != nil || fastVal != "fast" {
		t.Fatalf("fast Get = %q, %v", fastVal, fastErr)
	}
	if slowErr != nil || slowVal != "slow" {
		t.Fatalf("slow Get = %q, %v", slowVal, slowErr)
	}
}

// TestSessionConcurrentInFlight drives ≥64 concurrent operations through
// one pipelined connection against a real cluster — the -race exercise
// for the tag table, writer, and demux. (CI runs this package under
// -race; see the Makefile race target.)
func TestSessionConcurrentInFlight(t *testing.T) {
	addrs, servers, cleanup := startServedCluster(t, 3, 1, 1)
	defer cleanup()
	c := newTestSessionClient(t, addrs, smr.SessionOptions{Timeout: 20 * time.Second, Depth: 128})

	const goroutines = 64
	const opsEach = 4
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				key := fmt.Sprintf("g%d-k%d", g, i)
				val := fmt.Sprintf("v%d.%d", g, i)
				if err := c.Put(key, val); err != nil {
					errCh <- fmt.Errorf("put %s: %w", key, err)
					return
				}
				got, err := c.Get(key)
				if err != nil || got != val {
					errCh <- fmt.Errorf("get %s = %q, %v; want %q", key, got, err, val)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if !c.Pipelined() {
		t.Fatal("lost pipelined mode mid-test")
	}
	// All traffic multiplexed over session connections, not one per op.
	var counters smr.ServerCounters
	for _, s := range servers {
		cs := s.Counters()
		counters.Sessions += cs.Sessions
		counters.Frames += cs.Frames
	}
	if counters.Sessions == 0 || counters.Frames < goroutines*opsEach {
		t.Fatalf("server counters %+v: want ≥1 session and ≥%d frames", counters, goroutines*opsEach)
	}
}

// TestSessionAsyncPipeline checks the windowed async API end to end: a
// burst of PutAsync futures must all commit and be visible.
func TestSessionAsyncPipeline(t *testing.T) {
	addrs, _, cleanup := startServedCluster(t, 3, 1, 1)
	defer cleanup()
	c := newTestSessionClient(t, addrs, smr.SessionOptions{Timeout: 20 * time.Second, Depth: 32})

	const n = 48
	futures := make([]*smr.Future, n)
	for i := range futures {
		futures[i] = c.PutAsync(fmt.Sprintf("a%d", i), fmt.Sprintf("v%d", i))
	}
	for i, f := range futures {
		if err := f.Err(); err != nil {
			t.Fatalf("async put %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		if got, err := c.Get(fmt.Sprintf("a%d", i)); err != nil || got != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(a%d) = %q, %v", i, got, err)
		}
	}
	if err := c.PutAsync("bad key", "v").Err(); !errors.Is(err, smr.ErrRejected) {
		t.Fatalf("async put with bad key = %v, want ErrRejected", err)
	}
}
