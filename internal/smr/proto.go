package smr

// Shared pieces of the client/server wire protocol: bounded line reading,
// session frame encoding, and the key/value character rules both ends
// enforce. The protocol itself is documented in docs/SESSIONS.md.
//
// Two generations share one port:
//
//	v1 (legacy): one bare command line per request, replies in order.
//	v2 (sessions): the first line is "HELLO 2"; the server answers
//	    "OHAI 2 <replica> <leader>" and every subsequent line in either
//	    direction is a frame "<tag> <payload>" — tagged requests, many in
//	    flight, replies in any order.
//
// A v1 client never sends HELLO, so a v2 server serves it unchanged; a v2
// client that receives an ERR to its HELLO falls back to v1 on the same
// connection.

import (
	"bufio"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

const (
	// ProtocolVersion is the session protocol generation spoken after a
	// successful HELLO/OHAI negotiation.
	ProtocolVersion = 2

	// MaxLineBytes bounds one protocol line (request or reply), terminator
	// excluded. Lines over the limit are answered with "ERR line too long"
	// instead of silently killing the connection — the pre-session server
	// used bufio.Scanner's default 64 KB token limit and dropped the
	// connection without a reply, which clients misread as a maybe-applied
	// write for a command that never executed.
	MaxLineBytes = 1 << 20
)

// errLineTooLong reports a line over MaxLineBytes. readLine consumes the
// oversize line entirely, so the connection stays usable for a reply.
var errLineTooLong = errors.New("line too long")

// readLine reads one '\n'-terminated line of at most max bytes, stripping
// the terminator and one optional trailing '\r'. On an oversize line it
// returns the first max bytes alongside errLineTooLong after discarding
// the remainder, so a session server can still recover the frame tag to
// address its error reply. A partial line at EOF is an error: in this
// protocol it can only mean the peer died mid-request.
func readLine(br *bufio.Reader, max int) (string, error) {
	var buf []byte
	overflow := false
	for {
		frag, err := br.ReadSlice('\n')
		if err != nil && !errors.Is(err, bufio.ErrBufferFull) {
			return "", err
		}
		terminated := err == nil
		if terminated {
			frag = frag[:len(frag)-1] // drop the '\n'
		}
		if !overflow {
			if room := max - len(buf); len(frag) > room {
				frag = frag[:room]
				overflow = true
			}
			buf = append(buf, frag...)
		}
		if terminated {
			break
		}
	}
	if overflow {
		return string(buf), errLineTooLong
	}
	if len(buf) > 0 && buf[len(buf)-1] == '\r' {
		buf = buf[:len(buf)-1]
	}
	return string(buf), nil
}

// appendFrame encodes one session frame, "<tag> <payload>\n", into dst.
func appendFrame(dst []byte, tag uint64, payload string) []byte {
	dst = strconv.AppendUint(dst, tag, 10)
	dst = append(dst, ' ')
	dst = append(dst, payload...)
	return append(dst, '\n')
}

// parseFrame splits a session frame line (terminator already stripped)
// into its tag and payload.
func parseFrame(line string) (tag uint64, payload string, err error) {
	head, rest, ok := strings.Cut(line, " ")
	if !ok {
		return 0, "", fmt.Errorf("frame %q: missing tag separator", clip(line))
	}
	tag, err = strconv.ParseUint(head, 10, 64)
	if err != nil {
		return 0, "", fmt.Errorf("frame %q: bad tag: %v", clip(line), err)
	}
	return tag, rest, nil
}

// clip shortens a wire line for an error message.
func clip(s string) string {
	if len(s) > 48 {
		return s[:48] + "…"
	}
	return s
}

// checkKey rejects keys the line protocol cannot carry faithfully: keys
// are space-delimited tokens, so spaces and control characters (including
// '\n'/'\r', which would let a key smuggle a second command into the
// stream, and '\t', which the old strings.Fields parser silently split
// on) are refused before anything is sent.
func checkKey(key string) error {
	if key == "" {
		return errors.New("empty key")
	}
	for i := 0; i < len(key); i++ {
		if c := key[i]; c == ' ' || c < 0x20 || c == 0x7f {
			return fmt.Errorf("key %q: contains space or control character", clip(key))
		}
	}
	return nil
}

// checkValue rejects values the line protocol cannot carry faithfully:
// values run to the end of the line, so any '\n' or '\r' (or other
// control character except '\t') would terminate the request early and
// inject whatever follows as a new command — Put("k", "v\nDEL k") must
// fail client-side, not execute twice. Spaces and tabs are fine: the
// server preserves the value byte-for-byte after the second space.
func checkValue(val string) error {
	for i := 0; i < len(val); i++ {
		if c := val[i]; (c < 0x20 && c != '\t') || c == 0x7f {
			return fmt.Errorf("value %q: contains control character", clip(val))
		}
	}
	return nil
}
