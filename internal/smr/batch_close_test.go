package smr

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestBatcherCloseWaitsForFlushers pins the golifecycle fix: close must not
// return while a flusher goroutine is still running, because the caller
// (Replica.Close) proceeds to tear down the WAL and transport the flusher
// would then touch. Before the fix, close returned immediately and the
// window flusher kept running into the teardown.
func TestBatcherCloseWaitsForFlushers(t *testing.T) {
	const window = 100 * time.Millisecond
	b := newBatcher(nil, window, 4)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the submitter should give up immediately; the flusher stays
	if err := b.executeBatched(ctx, Command{Op: OpNoop, ID: "probe"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("executeBatched = %v, want context.Canceled", err)
	}

	// The spawned flushAfter sleeps for the full window; close must block
	// until it has exited (it wakes to find close emptied the queue, so the
	// nil replica is never touched).
	start := time.Now()
	b.close()
	if elapsed := time.Since(start); elapsed < window/2 {
		t.Fatalf("close returned after %v with a flusher still sleeping on a %v window", elapsed, window)
	}

	// Closed batcher rejects new work without spawning anything.
	if err := b.executeBatched(context.Background(), Command{Op: OpNoop, ID: "late"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("executeBatched after close = %v, want ErrClosed", err)
	}
}
