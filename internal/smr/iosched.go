package smr

import (
	"sync"
	"sync/atomic"

	"repro/internal/transport"
)

// IOScheduler is the out-of-lock I/O stage behind the outbox (outbox.go):
// one consumer goroutine that, per batch of entries, group-commits the WAL
// once, then sends messages and fires wakeups in FIFO order. Every replica
// owns a private scheduler by default; the sharded runtime (internal/shard)
// builds one scheduler and attaches every group's replica to it with
// ShareIO, so fsyncs from all groups in a process coalesce into a single
// group-commit stream — the scale-out payoff of the PR 4 outbox design.
//
// A shared scheduler implies shared fate: every attached replica must
// append to the same underlying WAL (per-group views of it included), and
// a commit failure poisons every replica with entries in flight, exactly
// as a private scheduler poisons its one owner.
type IOScheduler struct {
	ob *outbox

	// running flips once, when the first entry arrives; the consumer
	// goroutine exits (closing done) when the owner calls Close.
	running atomic.Bool
	mu      sync.Mutex
	done    chan struct{}
}

// NewSharedIO builds a scheduler intended to be shared by several replicas
// via (*Replica).ShareIO. The caller owns it: call Close after every
// attached replica has been closed or killed.
func NewSharedIO() *IOScheduler { return newIOScheduler() }

func newIOScheduler() *IOScheduler {
	return &IOScheduler{ob: newOutbox()}
}

// start lazily spawns the consumer. The atomic fast path keeps the
// per-entry cost of the check to one load once running.
func (s *IOScheduler) start() {
	if s.running.Load() {
		return
	}
	s.mu.Lock()
	if !s.running.Load() {
		s.done = make(chan struct{})
		s.running.Store(true)
		go s.loop()
	}
	s.mu.Unlock()
}

// enqueue hands one entry to the consumer. Called under the producing
// replica's lock; never blocks (the outbox is unbounded).
func (s *IOScheduler) enqueue(e outboxEntry) {
	s.start()
	s.ob.enqueue(e)
}

// barrier blocks until every entry queued before the call has been fully
// processed — WAL committed, messages sent, waiters woken. Replicas on a
// shared scheduler use it where private owners would drain-and-stop: it
// flushes their entries without tearing down the stream the other groups
// are still using.
func (s *IOScheduler) barrier() {
	done := make(chan struct{})
	s.enqueue(outboxEntry{done: done})
	<-done
}

// Close drains queued entries and stops the consumer. Only the scheduler's
// owner calls it: the replica itself for a private scheduler, the sharing
// runtime — after closing every attached replica — for a shared one.
func (s *IOScheduler) Close() {
	s.ob.close()
	s.mu.Lock()
	running := s.running.Load()
	done := s.done
	s.mu.Unlock()
	if running {
		<-done
	}
}

// loop is the single I/O consumer. Per batch it commits the journal once
// to the highest index any entry depends on (group commit across every
// step — and, shared, every group — in the batch), then sends and wakes in
// FIFO order. A commit failure poisons each entry's replica; from then on
// entries fail their waiters and send nothing.
func (s *IOScheduler) loop() {
	defer close(s.done)
	failed := false
	var failErr error
	for {
		batch, more := s.ob.take()
		if len(batch) > 0 {
			if !failed {
				// Every entry in one scheduler targets the same underlying
				// WAL (that is the contract of sharing), so committing
				// through the journal of the entry with the highest index
				// covers the whole batch.
				var maxIdx uint64
				var j Journal
				for _, e := range batch {
					if e.walIdx > maxIdx {
						maxIdx = e.walIdx
						j = e.r.journal()
					}
				}
				if j != nil && maxIdx > 0 {
					if err := j.Commit(maxIdx); err != nil {
						failed = true
						failErr = err
					}
				}
			}
			// The transport is reloaded per owner change, not per batch:
			// Kill detaches it under the replica lock, and entries queued
			// behind the detach must send nothing.
			var lastR *Replica
			var lastTr transport.Transport
			for _, e := range batch {
				if failed {
					if e.r != nil {
						e.r.ioFail(failErr)
					}
				} else if e.r != nil && len(e.msgs) > 0 {
					if e.r != lastR {
						lastR = e.r
						lastTr = e.r.currentTransport()
					}
					if lastTr != nil {
						for _, o := range e.msgs {
							_ = lastTr.Send(o.to, o.msg)
						}
					}
				}
				for _, w := range e.wake {
					w.fire(!failed)
				}
				if e.done != nil {
					close(e.done)
				}
			}
		}
		if !more {
			return
		}
	}
}
