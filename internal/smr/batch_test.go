package smr_test

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/smr"
)

func TestBatchingGroupsConcurrentWrites(t *testing.T) {
	replicas, cleanup := startCluster(t, 5, 2, 2)
	defer cleanup()
	replicas[0].EnableBatching(3*time.Millisecond, 0)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	kv := smr.NewKV(replicas[0])

	const writers = 16
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for i := 0; i < writers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := kv.Put(ctx, fmt.Sprintf("b%d", i), "v"); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// All writes visible.
	for i := 0; i < writers; i++ {
		if _, ok := kv.Get(fmt.Sprintf("b%d", i)); !ok {
			t.Fatalf("b%d missing", i)
		}
	}
	// And they occupied fewer slots than writes (batching happened).
	if applied := replicas[0].Applied(); applied >= writers {
		t.Fatalf("applied %d slots for %d writes: no batching observed", applied, writers)
	}
}

func TestBatchingPreservesAgreementAcrossProxies(t *testing.T) {
	replicas, cleanup := startCluster(t, 5, 2, 1)
	defer cleanup()
	for _, r := range replicas {
		r.EnableBatching(2*time.Millisecond, 8)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	errs := make(chan error, len(replicas)*4)
	for ri, r := range replicas {
		ri, r := ri, r
		wg.Add(1)
		go func() {
			defer wg.Done()
			kv := smr.NewKV(r)
			for j := 0; j < 4; j++ {
				if err := kv.Put(ctx, fmt.Sprintf("p%d-%d", ri, j), "v"); err != nil {
					errs <- fmt.Errorf("proxy %d: %w", ri, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Logs agree slot by slot across replicas (where both have them).
	max := replicas[0].Applied()
	for slot := 0; slot < max; slot++ {
		v0, ok := replicas[0].LogValue(slot)
		if !ok {
			continue
		}
		for i, r := range replicas[1:] {
			if v, ok := r.LogValue(slot); ok && v != v0 {
				t.Fatalf("replica %d slot %d disagrees", i+1, slot)
			}
		}
	}
}

func TestPutAllIsAtomic(t *testing.T) {
	replicas, cleanup := startCluster(t, 3, 1, 1)
	defer cleanup()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	kv := smr.NewKV(replicas[0])

	if err := kv.PutAll(ctx, map[string]string{"a": "1", "b": "2", "c": "3"}); err != nil {
		t.Fatal(err)
	}
	// All three writes visible, and they occupy exactly one slot.
	for k, want := range map[string]string{"a": "1", "b": "2", "c": "3"} {
		if got, ok := kv.Get(k); !ok || got != want {
			t.Fatalf("%s = %q ok=%v", k, got, ok)
		}
	}
	if applied := replicas[0].Applied(); applied != 1 {
		t.Fatalf("applied %d slots, want 1 (atomic batch)", applied)
	}
	if err := kv.PutAll(ctx, nil); err != nil {
		t.Fatalf("empty PutAll: %v", err)
	}
}

// The hand-spliced Command encoding must survive strings encoding/json
// would escape, nested batches included.
func TestCommandEncodeEscaping(t *testing.T) {
	cmd := smr.Command{
		ID: "p0-\"quoted\"-1",
		Op: smr.OpBatch,
		Subs: []smr.Command{
			{ID: "a\tb", Op: smr.OpPut, Key: "ké☃", Val: "line\nbreak \U0001F600"},
			{ID: `back\slash`, Op: smr.OpDelete, Key: "<&>"},
			{ID: "c", Op: smr.OpNoop},
		},
	}
	v, err := cmd.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid([]byte(v.Data)) {
		t.Fatalf("invalid JSON: %s", v.Data)
	}
	got, err := smr.DecodeCommand(v)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(cmd) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, cmd)
	}
}

func TestBatchCommandRoundTrip(t *testing.T) {
	batch := smr.Command{
		ID: "p0-batch-1",
		Op: smr.OpBatch,
		Subs: []smr.Command{
			{ID: "a", Op: smr.OpPut, Key: "x", Val: "1"},
			{ID: "b", Op: smr.OpDelete, Key: "y"},
		},
	}
	v, err := batch.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := smr.DecodeCommand(v)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(batch) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.Equal(smr.Command{ID: "p0-batch-1", Op: smr.OpBatch}) {
		t.Fatal("Equal ignores Subs")
	}
}
