package smr_test

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/smr"
	"repro/internal/transport"
	"repro/internal/wal"
)

// tapTransport wraps a Transport and, once armed, counts the slot-protocol
// messages that actually leave the replica. Status gossip rides along on the
// same transport but carries no new protocol state, so it is not counted.
type tapTransport struct {
	transport.Transport
	armed     atomic.Bool
	slotSends atomic.Int64
}

func (tt *tapTransport) Send(to consensus.ProcessID, msg consensus.Message) error {
	if tt.armed.Load() {
		if _, ok := msg.(*smr.SlotMessage); ok {
			tt.slotSends.Add(1)
		}
	}
	return tt.Transport.Send(to, msg)
}

// TestBlockedFsyncStallsSlotMessagesAndCompletions pins the core out-of-lock
// invariant with a failpoint: when the proposer's fsync blocks, no protocol
// message for the step leaves the process and the client call does not
// complete — durability gates visibility, not just eventually but per step.
// Releasing the fsync lets the pipeline drain and the command decide.
func TestBlockedFsyncStallsSlotMessagesAndCompletions(t *testing.T) {
	const n, f, e = 3, 1, 1
	mesh := transport.NewMesh(n)
	defer mesh.Close()

	stalled := make(chan struct{})
	release := make(chan struct{})
	var releaseOnce sync.Once
	unblock := func() { releaseOnce.Do(func() { close(release) }) }
	defer unblock() // never leave the outbox consumer wedged on test failure

	var armed atomic.Bool
	var stallOnce sync.Once
	hook := func() {
		if !armed.Load() {
			return
		}
		stallOnce.Do(func() { close(stalled) })
		<-release
	}

	base := t.TempDir()
	replicas := make([]*smr.Replica, n)
	var tap *tapTransport
	for i := 0; i < n; i++ {
		cfg := consensus.Config{ID: consensus.ProcessID(i), N: n, F: f, E: e, Delta: 10}
		r, err := smr.NewReplica(cfg, time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		opts := smr.DurabilityOptions{
			Dir:    filepath.Join(base, fmt.Sprintf("r%d", i)),
			Policy: wal.SyncAlways,
		}
		if i == 0 {
			opts.SyncHook = hook
		}
		if _, err := r.EnableDurability(opts); err != nil {
			t.Fatal(err)
		}
		tr, err := mesh.Endpoint(cfg.ID, r.Handle)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			tap = &tapTransport{Transport: tr}
			r.BindTransport(tap)
		} else {
			r.BindTransport(tr)
		}
		replicas[i] = r
		r.Start()
	}
	defer func() {
		for _, r := range replicas {
			r.Close()
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	kv := smr.NewKV(replicas[0])
	if err := kv.Put(ctx, "warm", "up"); err != nil {
		t.Fatalf("warm-up put: %v", err)
	}
	replicas[0].SyncIO() // drain the pipeline so the next fsync is ours

	armed.Store(true)
	tap.armed.Store(true)
	done := make(chan error, 1)
	go func() { done <- kv.Put(ctx, "k", "v") }()

	select {
	case <-stalled:
	case <-time.After(10 * time.Second):
		t.Fatal("proposing never reached an fsync")
	}
	// The fsync for the propose record is now blocked. Give the pipeline
	// ample opportunity to leak before asserting it did not.
	time.Sleep(100 * time.Millisecond)
	if got := tap.slotSends.Load(); got != 0 {
		t.Fatalf("%d slot message(s) left the proposer before its WAL record was durable", got)
	}
	select {
	case err := <-done:
		t.Fatalf("Put completed (err=%v) before its WAL record was durable", err)
	default:
	}

	unblock()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("put after release: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("put did not complete after fsync was released")
	}
	if got := tap.slotSends.Load(); got == 0 {
		t.Fatal("no slot messages sent even after fsync was released")
	}
	if v, ok := kv.Get("k"); !ok || v != "v" {
		t.Fatalf("Get(k) = %q, %t after decided put", v, ok)
	}
}
