package smr_test

import (
	"context"
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/smr"
	"repro/internal/transport"
	"repro/internal/wal"
)

// decideGate wraps a Transport and, once armed, swallows every message by
// which this replica could teach peers a decision: the decide broadcast,
// applied-index gossip, and catchup replies. Protocol request/response
// traffic (1B/2B votes to the proposer) still flows, so the replica can
// keep deciding locally while the rest of the cluster learns nothing —
// the "crash between WAL commit and send" window stretched wide open.
type decideGate struct {
	transport.Transport
	armed atomic.Bool
}

func (g *decideGate) Send(to consensus.ProcessID, msg consensus.Message) error {
	if g.armed.Load() {
		switch m := msg.(type) {
		case *smr.SlotMessage:
			if m.InnerKind == core.KindDecide {
				return nil
			}
		case *smr.Status, *smr.CatchupReply:
			_ = m
			return nil
		}
	}
	return g.Transport.Send(to, msg)
}

// TestAckedWriteSurvivesCrashBeforeDecideSend is the PR-4 outbox
// regression, on the full client path: the proposer acknowledges a write
// to a TCP client, crashes (WAL aborted, no final sync) before its decide
// broadcast reaches any peer, and must still serve the write after
// restarting from its data directory alone. If the outbox ever
// acknowledged before the group commit was durable, the restarted replica
// would come back without the write.
func TestAckedWriteSurvivesCrashBeforeDecideSend(t *testing.T) {
	const n, f, e = 3, 1, 1
	mesh := transport.NewMesh(n)
	defer mesh.Close()

	base := t.TempDir()
	dirs := make([]string, n)
	replicas := make([]*smr.Replica, n)
	var gate *decideGate
	for i := 0; i < n; i++ {
		cfg := consensus.Config{ID: consensus.ProcessID(i), N: n, F: f, E: e, Delta: 10}
		r, err := smr.NewReplica(cfg, time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		dirs[i] = filepath.Join(base, fmt.Sprintf("r%d", i))
		if _, err := r.EnableDurability(smr.DurabilityOptions{
			Dir:    dirs[i],
			Policy: wal.SyncAlways,
		}); err != nil {
			t.Fatal(err)
		}
		tr, err := mesh.Endpoint(cfg.ID, r.Handle)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			gate = &decideGate{Transport: tr}
			r.BindTransport(gate)
		} else {
			r.BindTransport(tr)
		}
		replicas[i] = r
		r.Start()
	}
	defer func() {
		for _, r := range replicas {
			if r != nil {
				r.Close()
			}
		}
	}()

	srv, err := smr.NewServer(replicas[0], "127.0.0.1:0", 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := smr.NewClient([]string{srv.Addr()}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if err := client.Put("warm", "up"); err != nil {
		t.Fatalf("warm-up put: %v", err)
	}
	replicas[0].SyncIO()

	gate.armed.Store(true)
	if err := client.Put("k", "acked"); err != nil {
		t.Fatalf("put under decide gate: %v", err)
	}
	// The client holds an acknowledgement. Crash the proposer: abort the
	// WAL without the graceful final sync and let no further byte out.
	if err := replicas[0].Kill(); err != nil {
		t.Logf("kill: %v", err) // fd close errors are not the point here
	}
	replicas[0] = nil

	// No peer may have learned the decision — the ack must be backed by
	// the proposer's WAL, not by surviving replicas.
	for i := 1; i < n; i++ {
		if v, ok := replicas[i].Get("k"); ok {
			t.Fatalf("replica %d learned k=%q despite the decide gate", i, v)
		}
	}

	// Restart the proposer from its data directory, fully isolated: a
	// capture transport instead of the mesh, so recovery can only use what
	// the crashed process made durable.
	cfg := consensus.Config{ID: 0, N: n, F: f, E: e, Delta: 10}
	r0, err := smr.NewReplica(cfg, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	info, err := r0.EnableDurability(smr.DurabilityOptions{
		Dir:    dirs[0],
		Policy: wal.SyncAlways,
	})
	if err != nil {
		t.Fatalf("recovery after crash: %v", err)
	}
	r0.BindTransport(&captureTr{self: 0})
	defer r0.Close()

	if v, ok := r0.Get("k"); !ok || v != "acked" {
		t.Fatalf("restarted proposer Get(k) = %q, %t — client-acked write lost after crash (recovery: %+v)",
			v, ok, info)
	}
	if v, ok := r0.Get("warm"); !ok || v != "up" {
		t.Fatalf("restarted proposer lost the warm-up write: %q, %t", v, ok)
	}
}

// TestKillFailsOutstandingCallsAndIsSilent pins Kill's barrier semantics:
// a Kill concurrent with client traffic must fail the outstanding calls
// (never acknowledge them after the WAL is gone) and leave the replica
// externally silent once it returns.
func TestKillFailsOutstandingCallsAndIsSilent(t *testing.T) {
	const n, f, e = 3, 1, 1
	mesh := transport.NewMesh(n)
	defer mesh.Close()

	base := t.TempDir()
	replicas := make([]*smr.Replica, n)
	var tap *tapTransport
	for i := 0; i < n; i++ {
		cfg := consensus.Config{ID: consensus.ProcessID(i), N: n, F: f, E: e, Delta: 10}
		r, err := smr.NewReplica(cfg, time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.EnableDurability(smr.DurabilityOptions{
			Dir:    filepath.Join(base, fmt.Sprintf("r%d", i)),
			Policy: wal.SyncAlways,
		}); err != nil {
			t.Fatal(err)
		}
		tr, err := mesh.Endpoint(cfg.ID, r.Handle)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			tap = &tapTransport{Transport: tr}
			r.BindTransport(tap)
		} else {
			r.BindTransport(tr)
		}
		replicas[i] = r
		r.Start()
	}
	defer func() {
		for i, r := range replicas {
			if i != 0 {
				r.Close()
			}
		}
	}()

	kv := smr.NewKV(replicas[0])
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	results := make(chan error, 4)
	for i := 0; i < 4; i++ {
		i := i
		go func() { results <- kv.Put(ctx, fmt.Sprintf("x%d", i), "y") }()
	}
	// Let some calls get in flight, then pull the plug mid-traffic.
	time.Sleep(2 * time.Millisecond)
	if err := replicas[0].Kill(); err != nil {
		t.Logf("kill: %v", err)
	}
	for i := 0; i < 4; i++ {
		// Calls either completed before the crash or must fail; hanging or
		// a post-crash acknowledgement would be a barrier violation.
		select {
		case <-results:
		case <-time.After(10 * time.Second):
			t.Fatal("client call still pending after Kill returned")
		}
	}
	tap.armed.Store(true) // count every send from here on
	time.Sleep(150 * time.Millisecond)
	if got := tap.slotSends.Load(); got != 0 {
		t.Fatalf("%d slot message(s) left the replica after Kill returned", got)
	}
}
