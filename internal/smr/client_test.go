package smr_test

import (
	"bufio"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/smr"
)

// scriptedServer accepts one connection at a time and answers each request
// line by calling reply; a nil return closes the connection without
// answering (the mid-request crash a client cannot distinguish from a
// slow commit).
func scriptedServer(t *testing.T, reply func(line string) *string) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				sc := bufio.NewScanner(conn)
				for sc.Scan() {
					r := reply(sc.Text())
					if r == nil {
						return
					}
					if _, err := conn.Write(append([]byte(*r), '\n')); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

func str(s string) *string { return &s }

// TestClientErrorTaxonomy pins the maybe-applied vs rejected distinction
// the linearizability checker depends on: every client failure must match
// exactly one of ErrMaybeApplied / ErrRejected, and the verdict must track
// whether the request could have reached consensus.
func TestClientErrorTaxonomy(t *testing.T) {
	requireOutcome := func(t *testing.T, err error, maybe bool) {
		t.Helper()
		if err == nil {
			t.Fatal("expected an error")
		}
		if errors.Is(err, smr.ErrMaybeApplied) != maybe {
			t.Fatalf("errors.Is(err, ErrMaybeApplied) = %t, want %t (err: %v)", !maybe, maybe, err)
		}
		if errors.Is(err, smr.ErrRejected) != !maybe {
			t.Fatalf("errors.Is(err, ErrRejected) = %t, want %t (err: %v)", maybe, !maybe, err)
		}
	}

	t.Run("dial failure is rejected", func(t *testing.T) {
		// A port nothing listens on: the request never left this process.
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close()
		c, err := smr.NewClient([]string{addr}, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		requireOutcome(t, c.Put("k", "v"), false)
	})

	t.Run("connection cut after send is maybe-applied", func(t *testing.T) {
		addr := scriptedServer(t, func(string) *string { return nil })
		c, err := smr.NewClient([]string{addr}, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		requireOutcome(t, c.Put("k", "v"), true)
	})

	t.Run("reply timeout is maybe-applied", func(t *testing.T) {
		addr := scriptedServer(t, func(string) *string {
			time.Sleep(time.Second) // past the client deadline
			return str("OK")
		})
		c, err := smr.NewClient([]string{addr}, 50*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		requireOutcome(t, c.Put("k", "v"), true)
	})

	t.Run("server-side error reply is maybe-applied", func(t *testing.T) {
		// e.g. the server's own context deadline fired mid-consensus: the
		// command may still decide.
		addr := scriptedServer(t, func(string) *string {
			return str("ERR smr execute: context deadline exceeded")
		})
		c, err := smr.NewClient([]string{addr}, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		requireOutcome(t, c.Put("k", "v"), true)
	})

	t.Run("usage error reply is rejected", func(t *testing.T) {
		addr := scriptedServer(t, func(string) *string {
			return str("ERR usage: PUT <key> <value>")
		})
		c, err := smr.NewClient([]string{addr}, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		requireOutcome(t, c.Put("k", "v"), false)
		requireOutcome(t, c.Delete("k"), false)
	})

	t.Run("unknown command reply is rejected", func(t *testing.T) {
		addr := scriptedServer(t, func(string) *string {
			return str("ERR unknown command PUT")
		})
		c, err := smr.NewClient([]string{addr}, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		requireOutcome(t, c.Put("k", "v"), false)
	})

	t.Run("NONE stays plain ErrNotFound", func(t *testing.T) {
		addr := scriptedServer(t, func(string) *string { return str("NONE") })
		c, err := smr.NewClient([]string{addr}, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		_, err = c.Get("k")
		if !errors.Is(err, smr.ErrNotFound) {
			t.Fatalf("Get miss = %v, want ErrNotFound", err)
		}
		if errors.Is(err, smr.ErrMaybeApplied) || errors.Is(err, smr.ErrRejected) {
			t.Fatalf("ErrNotFound must not carry an outcome verdict: %v", err)
		}
	})
}

// TestClientGetLinearizable exercises the GETL command end to end against
// a real served cluster: the linearizable read must observe a write that
// completed before it, through a different proxy than the writer's.
func TestClientGetLinearizable(t *testing.T) {
	addrs, _, cleanup := startServedCluster(t, 3, 1, 1)
	defer cleanup()

	writer, err := smr.NewClient(addrs[:1], 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()
	reader, err := smr.NewClient(addrs[1:2], 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()

	if err := writer.Put("color", "teal"); err != nil {
		t.Fatal(err)
	}
	// Plain Get through another proxy is allowed to lag; GETL is not.
	if got, err := reader.GetLinearizable("color"); err != nil || got != "teal" {
		t.Fatalf("GetLinearizable = %q, %v; want %q", got, err, "teal")
	}
	if err := writer.Delete("color"); err != nil {
		t.Fatal(err)
	}
	if _, err := reader.GetLinearizable("color"); !errors.Is(err, smr.ErrNotFound) {
		t.Fatalf("GetLinearizable after delete = %v, want ErrNotFound", err)
	}
}

// TestClientWriteErrorMessageMentionsAmbiguity keeps the human-readable
// form of a maybe-applied failure self-explanatory — failing seeds print
// these errors in chaos repro lines.
func TestClientWriteErrorMessageMentionsAmbiguity(t *testing.T) {
	addr := scriptedServer(t, func(string) *string { return nil })
	c, err := smr.NewClient([]string{addr}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Put("k", "v")
	if err == nil || !strings.Contains(err.Error(), "may have been applied") {
		t.Fatalf("error %q does not mention the unknown outcome", err)
	}
}
