package smr_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/smr"
	"repro/internal/transport"
	"repro/internal/wal"
)

// rebind is a swappable transport handler: a mesh endpoint can only be
// attached once, so restart-in-place tests point the endpoint here and
// swap the target replica underneath.
type rebind struct {
	mu sync.Mutex
	h  transport.Handler
}

func (rb *rebind) handle(from consensus.ProcessID, msg consensus.Message) {
	rb.mu.Lock()
	h := rb.h
	rb.mu.Unlock()
	if h != nil {
		h(from, msg)
	}
}

func (rb *rebind) set(h transport.Handler) {
	rb.mu.Lock()
	rb.h = h
	rb.mu.Unlock()
}

// durableCluster is a mesh of durable replicas that can be crashed and
// restarted in place from their data directories.
type durableCluster struct {
	t        *testing.T
	n        int
	mesh     *transport.Mesh
	dirs     []string
	rebinds  []*rebind
	trs      []transport.Transport
	replicas []*smr.Replica
	opts     func(dir string, i int) smr.DurabilityOptions
}

func newDurableCluster(t *testing.T, n, f, e, depth int, opts func(dir string, i int) smr.DurabilityOptions) *durableCluster {
	t.Helper()
	c := &durableCluster{
		t:        t,
		n:        n,
		mesh:     transport.NewMeshWithDepth(n, depth),
		dirs:     make([]string, n),
		rebinds:  make([]*rebind, n),
		trs:      make([]transport.Transport, n),
		replicas: make([]*smr.Replica, n),
		opts:     opts,
	}
	base := t.TempDir()
	for i := 0; i < n; i++ {
		c.dirs[i] = filepath.Join(base, fmt.Sprintf("r%d", i))
		c.rebinds[i] = &rebind{}
		tr, err := c.mesh.Endpoint(consensus.ProcessID(i), c.rebinds[i].handle)
		if err != nil {
			t.Fatal(err)
		}
		c.trs[i] = tr
	}
	for i := 0; i < n; i++ {
		if _, err := c.boot(i, f, e); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, r := range c.replicas {
			if r != nil {
				r.Close()
			}
		}
		c.mesh.Close()
	})
	return c
}

// boot builds replica i over its data dir and swaps it into the mesh.
func (c *durableCluster) boot(i, f, e int) (smr.RecoveryInfo, error) {
	cfg := consensus.Config{ID: consensus.ProcessID(i), N: c.n, F: f, E: e, Delta: 10}
	r, err := smr.NewReplica(cfg, time.Millisecond)
	if err != nil {
		return smr.RecoveryInfo{}, err
	}
	info, err := r.EnableDurability(c.opts(c.dirs[i], i))
	if err != nil {
		return smr.RecoveryInfo{}, err
	}
	r.BindTransport(c.trs[i])
	c.rebinds[i].set(r.Handle)
	c.replicas[i] = r
	r.Start()
	return info, nil
}

// restart closes (or abandons, if already poisoned) replica i and boots a
// fresh one from the same data directory.
func (c *durableCluster) restart(i, f, e int) smr.RecoveryInfo {
	c.t.Helper()
	c.rebinds[i].set(nil)
	if c.replicas[i] != nil {
		c.replicas[i].Close()
	}
	info, err := c.boot(i, f, e)
	if err != nil {
		c.t.Fatal(err)
	}
	return info
}

// waitApplied waits until replica i has applied at least want slots.
func (c *durableCluster) waitApplied(i, want int, d time.Duration) {
	c.t.Helper()
	deadline := time.Now().Add(d)
	for c.replicas[i].Applied() < want {
		if time.Now().After(deadline) {
			c.t.Fatalf("replica %d stuck at %d/%d applied", i, c.replicas[i].Applied(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestDurableRestartRecoversAppliedState(t *testing.T) {
	c := newDurableCluster(t, 3, 1, 1, 0, func(dir string, i int) smr.DurabilityOptions {
		return smr.DurabilityOptions{Dir: dir, Policy: wal.SyncNever, SnapshotEvery: 4}
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	kv := smr.NewKV(c.replicas[0])
	const writes = 10
	for j := 0; j < writes; j++ {
		if err := kv.Put(ctx, fmt.Sprintf("k%d", j), fmt.Sprintf("v%d", j)); err != nil {
			t.Fatal(err)
		}
	}
	c.waitApplied(1, writes, 10*time.Second)

	// Clean restart of replica 1: snapshot + WAL tail must rebuild the
	// applied store without any help from the cluster.
	info := c.restart(1, 1, 1)
	if !info.Recovered {
		t.Fatal("restart found no durable state")
	}
	if info.TornTail {
		t.Fatal("clean shutdown left a torn WAL tail")
	}
	if info.Applied < writes {
		t.Fatalf("recovered applied=%d, want >= %d", info.Applied, writes)
	}
	for j := 0; j < writes; j++ {
		if v, ok := c.replicas[1].Get(fmt.Sprintf("k%d", j)); !ok || v != fmt.Sprintf("v%d", j) {
			t.Fatalf("k%d = %q ok=%v after restart", j, v, ok)
		}
	}
	// The recovered replica keeps serving: more writes through it decide.
	kv1 := smr.NewKV(c.replicas[1])
	if err := kv1.Put(ctx, "post", "restart"); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.replicas[1].Get("post"); v != "restart" {
		t.Fatalf("post-restart write not applied: %q", v)
	}
}

func TestCrashFailpointUnderWorkloadRecoversAndRejoins(t *testing.T) {
	// Replica 2 crashes via a WAL failpoint mid-record while replica 0
	// serves a live workload; the survivors keep deciding (n=3, f=1), and
	// the restarted replica replays its journal and converges. The first
	// write lands before any crash with a single uncontended proposer, so
	// the recovered prefix includes fast-path decisions.
	limits := []int64{0, 0, 2500}
	c := newDurableCluster(t, 3, 1, 1, 0, func(dir string, i int) smr.DurabilityOptions {
		return smr.DurabilityOptions{
			Dir:            dir,
			Policy:         wal.SyncAlways,
			SnapshotEvery:  -1, // keep the whole journal: recovery must come from the WAL
			FailpointLimit: limits[i],
		}
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	kv := smr.NewKV(c.replicas[0])
	const writes = 30
	for j := 0; j < writes; j++ {
		if err := kv.Put(ctx, fmt.Sprintf("k%d", j), fmt.Sprintf("v%d", j)); err != nil {
			t.Fatal(err)
		}
	}
	// The workload must have tripped replica 2's failpoint.
	deadline := time.Now().Add(10 * time.Second)
	for c.replicas[2].Info().Applied >= c.replicas[0].Applied() {
		if time.Now().After(deadline) {
			t.Skipf("failpoint not reached: replica 2 applied %d", c.replicas[2].Info().Applied)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Restart in place without the failpoint: the torn record is truncated
	// and the journaled prefix replays.
	limits[2] = 0
	info := c.restart(2, 1, 1)
	if !info.Recovered {
		t.Fatal("restart found no durable state")
	}
	if !info.TornTail {
		t.Fatal("failpoint crash should leave a torn tail")
	}
	if info.WalRecords == 0 {
		t.Fatal("no WAL records replayed")
	}

	// The recovered replica rejoins: catchup closes the gap to the others.
	c.waitApplied(2, writes, 15*time.Second)
	for j := 0; j < writes; j++ {
		if v, ok := c.replicas[2].Get(fmt.Sprintf("k%d", j)); !ok || v != fmt.Sprintf("v%d", j) {
			t.Fatalf("k%d = %q ok=%v on recovered replica", j, v, ok)
		}
	}
	// Decided logs must agree wherever both replicas still hold the slot.
	for slot := 0; slot < writes; slot++ {
		v0, ok0 := c.replicas[0].LogValue(slot)
		v2, ok2 := c.replicas[2].LogValue(slot)
		if ok0 && ok2 && v0 != v2 {
			t.Fatalf("slot %d: %v != %v after recovery", slot, v0, v2)
		}
	}
}

func TestCrashGracefulShutdownRecoversWithoutTornTail(t *testing.T) {
	// A graceful shutdown (what the SIGTERM handlers in cmd/kv and
	// cmd/twostep invoke) must fsync and close the WAL even under
	// SyncNever, so the restart takes the clean path, not the torn-tail
	// one.
	c := newDurableCluster(t, 3, 1, 1, 0, func(dir string, i int) smr.DurabilityOptions {
		return smr.DurabilityOptions{Dir: dir, Policy: wal.SyncNever, SnapshotEvery: -1}
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		kv := smr.NewKV(c.replicas[0])
		for j := 0; ; j++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = kv.Put(ctx, fmt.Sprintf("w%d", j), "x")
		}
	}()
	// Let the workload run, then shut replica 1 down mid-stream.
	c.waitApplied(1, 3, 10*time.Second)
	before := c.replicas[1].Applied()
	c.rebinds[1].set(nil)
	if err := c.replicas[1].Close(); err != nil {
		t.Fatalf("graceful close: %v", err)
	}
	close(stop)
	wg.Wait()

	info, err := c.boot(1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if info.TornTail {
		t.Fatal("graceful shutdown took the torn-tail recovery path")
	}
	if !info.Recovered || info.Applied < before {
		t.Fatalf("recovered applied=%d, want >= %d", info.Applied, before)
	}
}

// captureTr records outbound messages so a test can observe what a
// replica (without a live mesh) says to its peers.
type captureTr struct {
	self consensus.ProcessID

	mu   sync.Mutex
	sent []struct {
		to  consensus.ProcessID
		msg consensus.Message
	}
}

func (c *captureTr) Self() consensus.ProcessID { return c.self }
func (c *captureTr) Stats() transport.Stats    { return transport.Stats{} }
func (c *captureTr) Close() error              { return nil }
func (c *captureTr) Send(to consensus.ProcessID, msg consensus.Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sent = append(c.sent, struct {
		to  consensus.ProcessID
		msg consensus.Message
	}{to, msg})
	return nil
}

// oneBs decodes the captured slot-wrapped 1B replies for a slot.
func (c *captureTr) oneBs(t *testing.T, slot int) []core.OneB {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []core.OneB
	for _, s := range c.sent {
		sm, ok := s.msg.(*smr.SlotMessage)
		if !ok || sm.Slot != slot || sm.InnerKind != core.KindOneB {
			continue
		}
		var b core.OneB
		if err := json.Unmarshal(sm.InnerBody, &b); err != nil {
			t.Fatal(err)
		}
		out = append(out, b)
	}
	return out
}

// slotMsg wraps an inner core message for delivery via Replica.Handle.
func slotMsg(t *testing.T, slot int, inner consensus.Message) *smr.SlotMessage {
	t.Helper()
	body, err := json.Marshal(inner)
	if err != nil {
		t.Fatal(err)
	}
	return &smr.SlotMessage{Slot: slot, InnerKind: inner.Kind(), InnerBody: body}
}

func TestDurablePromiseSurvivesRestart(t *testing.T) {
	// The paper's recovery rule assumes a recovering acceptor still knows
	// the ballots it joined. Join ballot 5, crash without a clean close,
	// restart, and check the replica refuses to join the lower ballot 3 —
	// an amnesiac replica would.
	dir := t.TempDir()
	cfg := consensus.Config{ID: 2, N: 3, F: 1, E: 1, Delta: 10}
	mk := func() (*smr.Replica, *captureTr, smr.RecoveryInfo) {
		r, err := smr.NewReplica(cfg, time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		info, err := r.EnableDurability(smr.DurabilityOptions{Dir: dir, Policy: wal.SyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		tr := &captureTr{self: cfg.ID}
		r.BindTransport(tr)
		r.Start()
		return r, tr, info
	}

	r1, tr1, _ := mk()
	r1.Handle(1, slotMsg(t, 0, &core.OneA{Ballot: 5}))
	r1.SyncIO() // sends are pipelined behind Handle; drain before inspecting
	replies := tr1.oneBs(t, 0)
	if len(replies) != 1 || replies[0].Ballot != 5 {
		t.Fatalf("expected one 1B(5), got %+v", replies)
	}
	// Crash: abandon r1 without Close (SyncAlways already made the join
	// durable). The restarted replica must still hold the promise.
	r2, tr2, info := mk()
	defer r2.Close()
	if !info.Recovered || info.OpenSlots != 1 {
		t.Fatalf("recovery info = %+v, want one restored open slot", info)
	}
	r2.Handle(0, slotMsg(t, 0, &core.OneA{Ballot: 3}))
	r2.SyncIO()
	for _, b := range tr2.oneBs(t, 0) {
		if b.Ballot == 3 {
			t.Fatal("recovered replica joined a ballot below its promise")
		}
	}
	// The promise itself is still answered: a higher ballot gets a 1B.
	r2.Handle(1, slotMsg(t, 0, &core.OneA{Ballot: 9}))
	r2.SyncIO()
	found := false
	for _, b := range tr2.oneBs(t, 0) {
		if b.Ballot == 9 {
			found = true
		}
	}
	if !found {
		t.Fatal("recovered replica no longer answers higher ballots")
	}
}

func TestCatchupCarriesDecidedTailForOpenSlots(t *testing.T) {
	// A snapshot/catchup reply must carry decided values for slots at or
	// above the sender's applied index, so receivers close decide gaps
	// they missed (the decided value of a still-open slot used to be
	// dropped on the floor).
	cfg := consensus.Config{ID: 0, N: 3, F: 1, E: 1, Delta: 10}
	r, err := smr.NewReplica(cfg, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	cmd := smr.Command{ID: "p9-1", Op: smr.OpPut, Key: "gap", Val: "filled"}
	v, err := cmd.Encode()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := json.Marshal(map[string]any{
		"applied": 0,
		"store":   map[string]string{},
		"decided": map[string]consensus.Value{"2": v},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.InstallSnapshotJSON(snap); err != nil {
		t.Fatal(err)
	}
	if got, ok := r.LogValue(2); !ok || got != v {
		t.Fatalf("decided tail not adopted: %v ok=%v", got, ok)
	}
	// The adopted decision must be re-exported to the next straggler.
	out, err := r.SnapshotJSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Decided map[string]consensus.Value `json:"decided"`
	}
	if err := json.Unmarshal(out, &decoded); err != nil {
		t.Fatal(err)
	}
	if got, ok := decoded.Decided["2"]; !ok || got != v {
		t.Fatalf("snapshot export lost the decided tail: %+v", decoded.Decided)
	}
}

func TestCatchupHealsDecideGapsUnderDrops(t *testing.T) {
	// A shallow mesh (depth 8) drops decide traffic under load; the
	// periodic status gossip plus the decided tail in CatchupReply must
	// still converge every replica onto the full log.
	replicas := make([]*smr.Replica, 3)
	mesh := transport.NewMeshWithDepth(3, 8)
	for i := range replicas {
		cfg := consensus.Config{ID: consensus.ProcessID(i), N: 3, F: 1, E: 1, Delta: 10}
		r, err := smr.NewReplica(cfg, time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := mesh.Endpoint(cfg.ID, r.Handle)
		if err != nil {
			t.Fatal(err)
		}
		r.BindTransport(tr)
		replicas[i] = r
	}
	for _, r := range replicas {
		r.Start()
	}
	defer func() {
		for _, r := range replicas {
			r.Close()
		}
		mesh.Close()
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	kv := smr.NewKV(replicas[0])
	const writes = 25
	for j := 0; j < writes; j++ {
		if err := kv.Put(ctx, fmt.Sprintf("d%d", j), "x"); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(20 * time.Second)
	for i, r := range replicas {
		for r.Applied() < writes {
			if time.Now().After(deadline) {
				t.Fatalf("replica %d stuck at %d/%d under drops", i, r.Applied(), writes)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

func TestDurableInfoReportsWalAndSnapshotState(t *testing.T) {
	c := newDurableCluster(t, 3, 1, 1, 0, func(dir string, i int) smr.DurabilityOptions {
		return smr.DurabilityOptions{Dir: dir, Policy: wal.SyncNever, SnapshotEvery: 5}
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	kv := smr.NewKV(c.replicas[0])
	for j := 0; j < 12; j++ {
		if err := kv.Put(ctx, fmt.Sprintf("i%d", j), "x"); err != nil {
			t.Fatal(err)
		}
	}
	info := c.replicas[0].Info()
	if !info.Durable {
		t.Fatal("Info does not report durability")
	}
	if info.Applied < 12 || info.WalSegments < 1 || info.WalBytes <= 0 {
		t.Fatalf("implausible info: %+v", info)
	}
	if info.SnapshotIndex == 0 {
		t.Fatalf("snapshots (every 5 commands) never taken: %+v", info)
	}
	if got := info.String(); got == "" {
		t.Fatal("empty INFO line")
	}
}

func TestEnableDurabilityTwiceFails(t *testing.T) {
	dir := t.TempDir()
	cfg := consensus.Config{ID: 0, N: 3, F: 1, E: 1, Delta: 10}
	r, err := smr.NewReplica(cfg, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.EnableDurability(smr.DurabilityOptions{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.EnableDurability(smr.DurabilityOptions{Dir: dir}); err == nil {
		t.Fatal("second EnableDurability succeeded")
	}
	if _, err := r.EnableDurability(smr.DurabilityOptions{}); err == nil {
		t.Fatal("empty dir accepted")
	}
}

func TestPoisonedReplicaRejectsWork(t *testing.T) {
	// After a journaling failure nothing may become externally visible, so
	// the replica closes itself; clients get ErrClosed, not silent
	// un-journaled progress.
	dir := t.TempDir()
	cfg := consensus.Config{ID: 0, N: 1, F: 0, E: 0, Delta: 10}
	r, err := smr.NewReplica(cfg, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// A tiny failpoint trips on the very first journaled record.
	if _, err := r.EnableDurability(smr.DurabilityOptions{Dir: dir, FailpointLimit: 20}); err != nil {
		t.Fatal(err)
	}
	r.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err = smr.NewKV(r).Put(ctx, "k", "v")
	if err == nil {
		t.Fatal("write succeeded past a journaling failure")
	}
	if !errors.Is(err, smr.ErrClosed) && ctx.Err() == nil {
		t.Fatalf("unexpected error: %v", err)
	}
}
