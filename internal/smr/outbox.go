package smr

import (
	"sync"

	"repro/internal/consensus"
)

// The outbox is the replica's out-of-lock I/O stage. Protocol steps run
// under Replica.mu and only *compute*: outbound messages, WAL records
// (buffered, not yet fsynced), and waiter wakeups are captured into an
// outboxEntry and enqueued. A single consumer goroutine then, per batch of
// entries, (1) group-commits the WAL up to the highest index any entry
// needs, (2) sends the messages, (3) fires the wakeups — in that order, so
// the durability invariant "no message or client acknowledgement escapes
// before its WAL record is durable" holds exactly as it did when the fsync
// and the sends happened inside the lock, while the lock itself is held
// only for in-memory work.
//
// FIFO with a single consumer preserves the per-replica emission order;
// batching entries per wakeup of the consumer is what turns N protocol
// steps' records into one fdatasync (wal.Commit coalesces further across
// concurrent committers).

// wakeup is a deferred waiter notification. The channels are detached from
// the replica's waiter maps at queue time (under the lock), so Close —
// which closes only channels still registered in the maps — can never
// double-close one that a pending wakeup owns.
type wakeup struct {
	v    consensus.Value
	chs  []chan consensus.Value // Execute waiters; each has capacity 1
	done []chan struct{}        // WaitApplied waiters
	// readOnly marks a wakeup that completes only read barriers (a bare
	// no-op's Execute waiters, with no WaitApplied waiter released): its
	// answer depends on no journaled state, so emitLocked lets it ride the
	// critical watermark instead of forcing the step's bookkeeping to disk
	// (reads skip the fsync; see persistDecideLocked for the record skip).
	readOnly bool
}

// fire delivers the wakeup. ok=false means the replica failed before the
// entry's records became durable: value waiters see a closed channel
// (Execute maps that to ErrClosed) and applied waiters are released to
// re-check the replica state.
func (w wakeup) fire(ok bool) {
	if ok {
		for _, ch := range w.chs {
			ch <- w.v
		}
	} else {
		for _, ch := range w.chs {
			close(ch)
		}
	}
	for _, ch := range w.done {
		close(ch)
	}
}

// outboxEntry is one protocol step's deferred I/O. r is the replica the
// step ran on — the consumer reads its transport and, on a commit failure,
// poisons it; a shared scheduler (internal/shard) interleaves entries from
// many replicas in one queue, so the owner travels with the entry (nil on
// barrier sentinels). walIdx is the WAL index that must be durable before
// msgs leave or wake fires (0: no durability dependency — no WAL, or a
// policy that does not sync on the hot path). Producers do NOT wait for
// their own entry — the pipeline is asynchronous, which is what lets
// entries pile up behind an in-flight fsync and share the next one. done
// is nil on hot-path entries; Replica.SyncIO enqueues a sentinel entry
// whose done channel the consumer closes once everything ahead of it
// (FIFO) has been committed, sent, and woken — a barrier for callers that
// need a step's effects externally visible.
type outboxEntry struct {
	r      *Replica
	walIdx uint64
	msgs   []outbound
	wake   []wakeup
	done   chan struct{}
}

// outbox is the unbounded FIFO between protocol steps (producers, under
// Replica.mu) and the consumer goroutine. Unbounded on purpose: enqueue
// runs while the replica lock is held and must never block, and a bounded
// channel would deadlock Close (producer stuck on a full queue vs consumer
// needing the lock the producer holds).
type outbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []outboxEntry
	closed bool
}

func newOutbox() *outbox {
	ob := &outbox{}
	ob.cond = sync.NewCond(&ob.mu)
	return ob
}

// enqueue appends one entry without ever blocking. After close, nothing
// will perform the entry's I/O, but its waiters must not leak: they are
// failed on the spot.
func (ob *outbox) enqueue(e outboxEntry) {
	ob.mu.Lock()
	if ob.closed {
		ob.mu.Unlock()
		for _, w := range e.wake {
			w.fire(false)
		}
		if e.done != nil {
			close(e.done)
		}
		return
	}
	ob.queue = append(ob.queue, e)
	ob.cond.Signal()
	ob.mu.Unlock()
}

// take removes and returns everything queued, blocking while the queue is
// empty. more=false means the outbox is closed AND drained: the consumer
// processes the returned batch (possibly empty) and exits.
func (ob *outbox) take() (batch []outboxEntry, more bool) {
	ob.mu.Lock()
	defer ob.mu.Unlock()
	for len(ob.queue) == 0 && !ob.closed {
		ob.cond.Wait()
	}
	batch = ob.queue
	ob.queue = nil
	return batch, !ob.closed
}

// close stops the outbox: queued entries are still drained by the consumer,
// new entries are rejected (their waiters failed).
func (ob *outbox) close() {
	ob.mu.Lock()
	ob.closed = true
	ob.cond.Broadcast()
	ob.mu.Unlock()
}
