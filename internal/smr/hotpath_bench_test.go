package smr_test

// Micro-benchmarks for the replication hot path: command encoding, slot
// wrapping, and the end-to-end submit pipeline. Run with
//
//	go test -bench 'CommandEncode|SlotWrap|ReplicaPipeline' -benchmem ./internal/smr/
//
// The encode benchmarks exist to keep allocs/op honest: the pooled codec
// work (consensus.MarshalPooled, hand-spliced envelopes) is only worth its
// complexity while these stay flat.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/smr"
)

// BenchmarkCommandEncode measures Command → consensus.Value encoding (one
// pooled JSON marshal + inline FNV-1a key), the first step of every client
// submission.
func BenchmarkCommandEncode(b *testing.B) {
	cmd := smr.Command{ID: "p0-42", Op: smr.OpPut, Key: "account-1234", Val: "balance=99.50"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cmd.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSlotWrap measures wrapping an inner core message into its
// slot-addressed wire frame (pooled inner marshal + spliced SlotMessage +
// spliced outer envelope) — the encode path every inter-replica protocol
// message takes.
func BenchmarkSlotWrap(b *testing.B) {
	codec := consensus.NewCodec()
	smr.RegisterMessages(codec)
	inner := &core.OneB{Ballot: 7, VBal: 3, Val: consensus.IntValue(42), Proposer: 2, Decided: consensus.None}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body, err := consensus.MarshalPooled(inner)
		if err != nil {
			b.Fatal(err)
		}
		sm := &smr.SlotMessage{Slot: 12345, InnerKind: inner.Kind(), InnerBody: body}
		if _, err := codec.Encode(sm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplicaPipeline measures one committed write end to end on an
// in-memory 3-replica mesh: encode, slot allocation, consensus round,
// apply, waiter wakeup through the outbox.
func BenchmarkReplicaPipeline(b *testing.B) {
	replicas, cleanup := startCluster(b, 3, 1, 1)
	defer cleanup()
	kv := smr.NewKV(replicas[0])
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := kv.Put(ctx, fmt.Sprintf("k%d", i%64), "v"); err != nil {
			b.Fatal(err)
		}
	}
}
