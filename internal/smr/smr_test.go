package smr_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/smr"
	"repro/internal/transport"
)

// startCluster boots n replicas over an in-process mesh.
func startCluster(t testing.TB, n, f, e int) ([]*smr.Replica, func()) {
	t.Helper()
	mesh := transport.NewMesh(n)
	replicas := make([]*smr.Replica, n)
	for i := 0; i < n; i++ {
		cfg := consensus.Config{ID: consensus.ProcessID(i), N: n, F: f, E: e, Delta: 10}
		r, err := smr.NewReplica(cfg, time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := mesh.Endpoint(cfg.ID, r.Handle)
		if err != nil {
			t.Fatal(err)
		}
		r.BindTransport(tr)
		replicas[i] = r
	}
	for _, r := range replicas {
		r.Start()
	}
	cleanup := func() {
		for _, r := range replicas {
			r.Close()
		}
		mesh.Close()
	}
	return replicas, cleanup
}

func TestKVPutGet(t *testing.T) {
	replicas, cleanup := startCluster(t, 5, 2, 2)
	defer cleanup()

	kv := smr.NewKV(replicas[0])
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	if err := kv.Put(ctx, "city", "huatulco"); err != nil {
		t.Fatal(err)
	}
	if got, ok := kv.Get("city"); !ok || got != "huatulco" {
		t.Fatalf("Get(city) = %q ok=%v", got, ok)
	}
	if err := kv.Put(ctx, "city", "madrid"); err != nil {
		t.Fatal(err)
	}
	if got, _ := kv.Get("city"); got != "madrid" {
		t.Fatalf("Get(city) = %q after overwrite", got)
	}
	if err := kv.Delete(ctx, "city"); err != nil {
		t.Fatal(err)
	}
	if _, ok := kv.Get("city"); ok {
		t.Fatal("key survives deletion")
	}
}

func TestConcurrentProxiesConvergeOnOneLog(t *testing.T) {
	replicas, cleanup := startCluster(t, 5, 2, 1)
	defer cleanup()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const perProxy = 5
	var wg sync.WaitGroup
	errs := make(chan error, len(replicas)*perProxy)
	for i, r := range replicas {
		i, r := i, r
		wg.Add(1)
		go func() {
			defer wg.Done()
			kv := smr.NewKV(r)
			for j := 0; j < perProxy; j++ {
				key := fmt.Sprintf("k%d-%d", i, j)
				if err := kv.Put(ctx, key, fmt.Sprintf("v%d", j)); err != nil {
					errs <- fmt.Errorf("proxy %d: %w", i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Each of the 25 commands wins exactly one slot, so every replica must
	// eventually apply 25 contiguous slots.
	want := len(replicas) * perProxy
	deadline := time.Now().Add(10 * time.Second)
	for i, r := range replicas {
		for r.Applied() < want {
			if time.Now().After(deadline) {
				t.Fatalf("replica %d stuck at %d/%d applied", i, r.Applied(), want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	// Logs must agree slot by slot.
	for slot := 0; slot < want; slot++ {
		v0, ok := replicas[0].LogValue(slot)
		if !ok {
			t.Fatalf("replica 0 missing slot %d", slot)
		}
		for i, r := range replicas {
			if v, ok := r.LogValue(slot); ok && v != v0 {
				t.Fatalf("replica %d slot %d: %v != %v", i, slot, v, v0)
			}
		}
	}
	// All written keys visible on proxy 0 after it applied everything.
	for i := range replicas {
		for j := 0; j < perProxy; j++ {
			key := fmt.Sprintf("k%d-%d", i, j)
			if _, ok := replicas[0].Get(key); !ok {
				t.Errorf("key %s missing from replica 0 store", key)
			}
		}
	}
}

func TestGetLinearizableSeesOtherProxiesWrites(t *testing.T) {
	replicas, cleanup := startCluster(t, 5, 2, 2)
	defer cleanup()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	writer := smr.NewKV(replicas[1])
	reader := smr.NewKV(replicas[4])

	if err := writer.Put(ctx, "x", "1"); err != nil {
		t.Fatal(err)
	}
	// A linearizable read through any proxy must observe the acknowledged
	// write, no matter how far behind the proxy's applied state is.
	got, ok, err := reader.GetLinearizable(ctx, "x")
	if err != nil {
		t.Fatal(err)
	}
	if !ok || got != "1" {
		t.Fatalf("GetLinearizable = %q ok=%v, want \"1\"", got, ok)
	}
}

func TestCommandRoundTrip(t *testing.T) {
	cmd := smr.Command{ID: "p1-7", Op: smr.OpPut, Key: "a", Val: "b"}
	v, err := cmd.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := smr.DecodeCommand(v)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(cmd) {
		t.Fatalf("round trip: %+v != %+v", got, cmd)
	}
	if v.IsNone() || v.Key <= 0 {
		t.Fatalf("encoded ordering key %d must be positive", v.Key)
	}
}
