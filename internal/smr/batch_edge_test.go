package smr_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/smr"
)

// Adaptive batching must not tax an idle client: a lone sequential writer
// gets one consensus instance per command (no OpBatch wrapper, no window
// sleep), so applied slots == writes.
func TestAdaptiveBatchingIdleFastPath(t *testing.T) {
	replicas, cleanup := startCluster(t, 3, 1, 1)
	defer cleanup()
	replicas[0].EnableAdaptiveBatching(0)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	kv := smr.NewKV(replicas[0])
	for i := 0; i < 3; i++ {
		if err := kv.Put(ctx, fmt.Sprintf("k%d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	if applied := replicas[0].Applied(); applied != 3 {
		t.Fatalf("applied %d slots for 3 idle writes, want 3", applied)
	}
	st := replicas[0].BatchStats()
	if st.Mode != "adaptive" || st.Batches != 3 || st.Cmds != 3 {
		t.Fatalf("stats = %+v, want adaptive 3/3", st)
	}
}

// Under concurrency the adaptive batcher groups whatever arrives while a
// flush is in flight, so consensus instances < commands.
func TestAdaptiveBatchingCoalescesUnderLoad(t *testing.T) {
	replicas, cleanup := startCluster(t, 5, 2, 2)
	defer cleanup()
	replicas[0].EnableAdaptiveBatching(0)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	kv := smr.NewKV(replicas[0])

	const writers = 16
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for i := 0; i < writers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := kv.Put(ctx, fmt.Sprintf("a%d", i), "v"); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i := 0; i < writers; i++ {
		if _, ok := kv.Get(fmt.Sprintf("a%d", i)); !ok {
			t.Fatalf("a%d missing", i)
		}
	}
	st := replicas[0].BatchStats()
	if st.Cmds != writers {
		t.Fatalf("cmds = %d, want %d", st.Cmds, writers)
	}
	if st.Batches >= writers {
		t.Fatalf("%d batches for %d concurrent writes: no coalescing", st.Batches, writers)
	}
}

// A caller whose context dies mid-window gets its error immediately, but
// the command is already queued: the batch must still commit, and the
// abandoned waiter channel (capacity 1) must absorb the late result
// without blocking the flusher.
func TestBatchCtxCancelMidBatch(t *testing.T) {
	replicas, cleanup := startCluster(t, 3, 1, 1)
	defer cleanup()
	replicas[0].EnableBatching(100*time.Millisecond, 0)
	kv := smr.NewKV(replicas[0])

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	err := kv.Put(ctx, "late", "v")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, ok := kv.Get("late"); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("abandoned command never committed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Close racing an in-flight flush: every submission resolves (either
// applied or ErrClosed), nothing deadlocks, nothing panics.
func TestBatchCloseRacesFlush(t *testing.T) {
	replicas, cleanup := startCluster(t, 3, 1, 1)
	replicas[0].EnableAdaptiveBatching(4)
	kv := smr.NewKV(replicas[0])

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	const writers = 24
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for i := 0; i < writers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- kv.Put(ctx, fmt.Sprintf("c%d", i), "v")
		}()
	}
	time.Sleep(2 * time.Millisecond)
	cleanup() // closes all replicas while writes are in flight
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil && !errors.Is(err, smr.ErrClosed) {
			t.Fatalf("unexpected error: %v", err)
		}
	}
}

// maxSize is a hard cap: an overflowing queue is split into several
// batches, each at most maxSize commands, and none are lost.
func TestBatchMaxSizeOverflowSplits(t *testing.T) {
	replicas, cleanup := startCluster(t, 3, 1, 1)
	defer cleanup()
	const maxSize = 4
	replicas[0].EnableBatching(20*time.Millisecond, maxSize)
	kv := smr.NewKV(replicas[0])

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	const writers = 10
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for i := 0; i < writers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := kv.Put(ctx, fmt.Sprintf("s%d", i), "v"); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i := 0; i < writers; i++ {
		if _, ok := kv.Get(fmt.Sprintf("s%d", i)); !ok {
			t.Fatalf("s%d missing", i)
		}
	}
	total := 0
	for slot := 0; slot < replicas[0].Applied(); slot++ {
		v, ok := replicas[0].LogValue(slot)
		if !ok {
			continue
		}
		cmd, err := smr.DecodeCommand(v)
		if err != nil {
			t.Fatalf("slot %d: %v", slot, err)
		}
		if cmd.Op == smr.OpBatch {
			if len(cmd.Subs) > maxSize {
				t.Fatalf("slot %d batch has %d commands, cap %d", slot, len(cmd.Subs), maxSize)
			}
			total += len(cmd.Subs)
		} else {
			total++
		}
	}
	if total != writers {
		t.Fatalf("log carries %d commands, want %d", total, writers)
	}
	if st := replicas[0].BatchStats(); st.Cmds != writers {
		t.Fatalf("stats cmds = %d, want %d", st.Cmds, writers)
	}
}
