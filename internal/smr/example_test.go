package smr_test

import (
	"context"
	"fmt"
	"time"

	"repro/internal/consensus"
	"repro/internal/smr"
	"repro/internal/transport"
)

// Example boots a three-replica key-value store on the in-process mesh and
// performs a replicated write followed by a linearizable read through a
// different proxy.
func Example() {
	const n, f, e = 3, 1, 1
	mesh := transport.NewMesh(n)
	defer mesh.Close()

	replicas := make([]*smr.Replica, n)
	for i := 0; i < n; i++ {
		cfg := consensus.Config{ID: consensus.ProcessID(i), N: n, F: f, E: e, Delta: 10}
		r, err := smr.NewReplica(cfg, time.Millisecond)
		if err != nil {
			panic(err)
		}
		tr, err := mesh.Endpoint(cfg.ID, r.Handle)
		if err != nil {
			panic(err)
		}
		r.BindTransport(tr)
		replicas[i] = r
	}
	for _, r := range replicas {
		r.Start()
		defer r.Close()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	writer := smr.NewKV(replicas[0])
	if err := writer.Put(ctx, "venue", "Huatulco"); err != nil {
		panic(err)
	}
	reader := smr.NewKV(replicas[2])
	v, ok, err := reader.GetLinearizable(ctx, "venue")
	if err != nil {
		panic(err)
	}
	fmt.Printf("venue=%s ok=%v\n", v, ok)
	// Output:
	// venue=Huatulco ok=true
}
