package smr

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrSessionClosed reports an operation attempted on a closed
// SessionClient.
var ErrSessionClosed = errors.New("smr session: client closed")

// errOpTimeout marks an operation that outlived its deadline while in
// flight: the request was (almost certainly) sent, so a write's outcome is
// unknown.
var errOpTimeout = errors.New("smr session: operation timed out")

// SessionOptions configures a SessionClient.
type SessionOptions struct {
	// Timeout bounds each operation, dial included (default 30s).
	Timeout time.Duration
	// Depth caps in-flight operations per connection (default 64).
	// Callers beyond the cap block until a slot frees — the pipelining
	// window.
	Depth int
	// PreferLeader re-sticks the client to the proxy the server names as
	// the current Ω leader (the OHAI hint): fast-path proposals complete
	// in two message delays only when they originate at a replica the
	// fast-side quorum hears directly, so proposer locality is worth one
	// extra dial. Requires addrs to be ordered by replica id.
	PreferLeader bool
}

// SessionClient is the pipelined, multiplexed client: any number of
// goroutines share one TCP connection, each request carries a tag, many
// are in flight at once, and a demux goroutine routes replies (which may
// arrive out of order) back to their callers. Against a pre-session
// server the client degrades to the one-at-a-time legacy protocol on the
// same connection, so it can be deployed before its servers.
//
// Failure semantics match Client exactly: every failed operation matches
// exactly one of ErrMaybeApplied / ErrRejected. On a connection failure,
// pending operations whose frames never reached the socket are re-queued
// onto the next proxy (they provably did not execute); operations already
// written fail as maybe-applied if they mutate, and are retried if they
// are reads (re-executing a read is harmless).
type SessionClient struct {
	addrs []string
	opts  SessionOptions

	mu     sync.Mutex
	cur    int
	sess   *session
	closed bool
	// sticky pins cur against the OHAI Ω-leader redial after a lease-held
	// redirect: the leaseholder hint is fresher than the Ω estimate (the
	// leader and the leaseholder can differ transiently), so following the
	// Ω hint would bounce the client straight back to the replica that
	// just refused it. Cleared when the pinned proxy fails.
	sticky bool
}

// NewSessionClient builds a pipelined client over the given proxy
// addresses (ordered by replica id if PreferLeader is set).
func NewSessionClient(addrs []string, opts SessionOptions) (*SessionClient, error) {
	if len(addrs) == 0 {
		return nil, ErrNoProxies
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	if opts.Depth <= 0 {
		opts.Depth = 64
	}
	return &SessionClient{addrs: addrs, opts: opts}, nil
}

// Put replicates a write. A non-nil error matches exactly one of
// ErrMaybeApplied / ErrRejected.
func (c *SessionClient) Put(key, val string) error {
	if err := checkPut(key, val); err != nil {
		return err
	}
	return c.write("PUT " + key + " " + val)
}

// Delete removes a key, with Put's error contract.
func (c *SessionClient) Delete(key string) error {
	if err := checkKey(key); err != nil {
		return &outcomeError{cause: err, maybe: false}
	}
	return c.write("DEL " + key)
}

// Get reads a key from the proxy's applied state (possibly stale; see
// Client.Get).
func (c *SessionClient) Get(key string) (string, error) {
	if err := checkKey(key); err != nil {
		return "", &outcomeError{cause: err, maybe: false}
	}
	return c.get("GET " + key)
}

// GetLinearizable reads a key with linearizable semantics.
func (c *SessionClient) GetLinearizable(key string) (string, error) {
	if err := checkKey(key); err != nil {
		return "", &outcomeError{cause: err, maybe: false}
	}
	return c.get("GETL " + key)
}

// Ping round-trips a no-op through the session.
func (c *SessionClient) Ping() error {
	reply, _, err := c.call("PING", false)
	if err != nil {
		return err
	}
	if reply != "PONG" {
		return &outcomeError{cause: fmt.Errorf("smr session: %s", reply), maybe: false}
	}
	return nil
}

// Stats fetches the proxy replica's transport counters line. Failures
// carry the same ErrMaybeApplied/ErrRejected verdict as every other
// operation (STATS never mutates, so its verdict is informational, but
// the taxonomy invariant holds for all client errors).
func (c *SessionClient) Stats() (string, error) {
	return c.prefixed("STATS")
}

// Info fetches the proxy replica's operational summary line, with Stats's
// error contract.
func (c *SessionClient) Info() (string, error) {
	return c.prefixed("INFO")
}

func (c *SessionClient) prefixed(cmd string) (string, error) {
	reply, sent, err := c.call(cmd, false)
	if err != nil {
		return "", &outcomeError{cause: err, maybe: sent}
	}
	if !strings.HasPrefix(reply, cmd+" ") {
		return "", &outcomeError{
			cause: fmt.Errorf("smr session: %s", reply),
			maybe: ambiguousReply(reply),
		}
	}
	return strings.TrimPrefix(reply, cmd+" "), nil
}

func (c *SessionClient) write(cmd string) error {
	reply, sent, err := c.call(cmd, true)
	if err != nil {
		return &outcomeError{cause: err, maybe: sent}
	}
	if reply != "OK" {
		return &outcomeError{
			cause: fmt.Errorf("smr session: %s", reply),
			maybe: ambiguousReply(reply),
		}
	}
	return nil
}

func (c *SessionClient) get(cmd string) (string, error) {
	reply, sent, err := c.call(cmd, false)
	if err != nil {
		return "", &outcomeError{cause: err, maybe: sent}
	}
	switch {
	case strings.HasPrefix(reply, "VAL "):
		return strings.TrimPrefix(reply, "VAL "), nil
	case reply == "NONE":
		return "", ErrNotFound
	default:
		return "", &outcomeError{
			cause: fmt.Errorf("smr session: %s", reply),
			maybe: ambiguousReply(reply),
		}
	}
}

// Proxy returns the address of the proxy currently in use.
func (c *SessionClient) Proxy() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.addrs[c.cur]
}

// Pipelined reports whether the current connection negotiated the v2
// session protocol (false: legacy fallback, one request at a time).
func (c *SessionClient) Pipelined() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sess != nil && !c.sess.legacy
}

// LeaderHint returns the replica id the current session's server reported
// as Ω leader, or -1 when unknown (legacy session or not yet connected).
func (c *SessionClient) LeaderHint() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sess == nil || c.sess.legacy {
		return -1
	}
	return c.sess.leader
}

// Close tears down the connection; in-flight operations fail with their
// usual verdicts.
func (c *SessionClient) Close() error {
	c.mu.Lock()
	sess := c.sess
	c.sess = nil
	c.closed = true
	c.mu.Unlock()
	if sess != nil {
		sess.teardown(ErrSessionClosed)
	}
	return nil
}

// call runs one command with failover: each proxy is tried at most once
// per operation. A mutating command stops retrying the moment one attempt
// may have reached a server (a re-queued write would be a second proposal
// and could apply twice); reads retry on every failure.
//
// A "lease held by replica N" reply is a definite pre-propose refusal
// naming the replica that can serve: with PreferLeader set the client
// re-sticks to it and retries (safe even for writes — nothing entered
// consensus), which is what moves GETL readers onto the leaseholder.
func (c *SessionClient) call(cmd string, mutating bool) (reply string, sent bool, err error) {
	var lastErr error = ErrNoProxies
	for attempt := 0; attempt < len(c.addrs); attempt++ {
		sess, err := c.session()
		if err != nil {
			// session() already rotated through every address.
			return "", sent, err
		}
		res := sess.do(cmd, c.opts.Timeout)
		if res.err == nil {
			if h, held := leaseHolderHint(res.reply); held &&
				c.opts.PreferLeader && h < len(c.addrs) && attempt+1 < len(c.addrs) {
				lastErr = fmt.Errorf("smr session: %s", res.reply)
				c.redirect(sess, h)
				continue
			}
			return res.reply, true, nil
		}
		lastErr = res.err
		if res.sent {
			sent = true
		}
		// A failed or timed-out session is dead to us: drop it so the
		// next attempt dials the next proxy.
		c.drop(sess, res.err)
		if res.sent && mutating {
			break
		}
	}
	return "", sent, fmt.Errorf("smr session: proxies failed: %w", lastErr)
}

// session returns the live session, dialing (and negotiating) one if
// needed. Dial failures rotate to the next proxy; with PreferLeader set,
// a successful handshake whose OHAI names a different replica as leader
// triggers one redial toward it.
func (c *SessionClient) session() (*session, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrSessionClosed
	}
	if c.sess != nil && c.sess.alive() {
		return c.sess, nil
	}
	c.sess = nil
	var lastErr error = ErrNoProxies
	for i := 0; i < len(c.addrs); i++ {
		sess, err := dialSession(c.addrs[c.cur], c.opts.Timeout, c.opts.Depth)
		if err != nil {
			lastErr = err
			c.cur = (c.cur + 1) % len(c.addrs)
			continue
		}
		if c.opts.PreferLeader && !c.sticky && !sess.legacy &&
			sess.leader != sess.replicaID &&
			sess.leader >= 0 && sess.leader < len(c.addrs) && sess.leader != c.cur {
			if redir, err := dialSession(c.addrs[sess.leader], c.opts.Timeout, c.opts.Depth); err == nil {
				hinted := sess.leader
				sess.teardown(errors.New("smr session: redirected to leader"))
				c.cur = hinted
				sess = redir
			}
			// The hinted leader being unreachable is fine: stay on the
			// proxy that answered.
		}
		c.sess = sess
		return sess, nil
	}
	return nil, fmt.Errorf("smr session: no proxy reachable: %w", lastErr)
}

// leaseHolderHint parses the leaseholder id out of a lease-held refusal
// ("ERR lease held by replica N", possibly with trailing context).
func leaseHolderHint(reply string) (int, bool) {
	if !strings.HasPrefix(reply, leaseHeldPrefix) {
		return -1, false
	}
	digits, _, _ := strings.Cut(strings.TrimPrefix(reply, leaseHeldPrefix), " ")
	h, err := strconv.Atoi(digits)
	if err != nil || h < 0 {
		return -1, false
	}
	return h, true
}

// redirect re-sticks the client to the replica a lease-held refusal named
// and discards the session that refused, so the next attempt dials the
// leaseholder (requires addrs ordered by replica id, as PreferLeader
// documents). Teardown runs outside the lock, like drop.
func (c *SessionClient) redirect(sess *session, holder int) {
	c.mu.Lock()
	if c.sess == sess {
		c.sess = nil
		c.cur = holder
		c.sticky = true
	}
	c.mu.Unlock()
	sess.teardown(errors.New("smr session: redirected to leaseholder"))
}

// drop discards sess if it is still the client's current session and
// rotates to the next proxy.
func (c *SessionClient) drop(sess *session, cause error) {
	c.mu.Lock()
	if c.sess == sess {
		c.sess = nil
		c.cur = (c.cur + 1) % len(c.addrs)
		c.sticky = false // the pinned leaseholder failed; hints are stale
	}
	c.mu.Unlock()
	sess.teardown(cause)
}

// opResult is the raw outcome of one session operation, before the
// client-level error taxonomy is applied.
type opResult struct {
	reply string
	err   error
	sent  bool // the frame was (at least partially) written to the socket
}

// sessionOp is one in-flight tagged request.
type sessionOp struct {
	tag uint64
	cmd string
	// sent is guarded by session.mu: the writer sets it immediately
	// before writing, so on teardown every op knows whether its bytes may
	// be on the wire.
	sent bool
	// ch receives the op's result exactly once — from the demux loop, or
	// from teardown. An abandoned (timed-out) op is deregistered instead
	// and never receives.
	ch chan opResult
}

// session is one negotiated connection: a writer goroutine drains the
// send queue with batched flushes, a demux goroutine routes tagged
// replies to waiting ops, and a depth semaphore bounds what is in flight.
// In legacy mode (v1 fallback) the queue and demux are idle and do()
// serializes round trips.
type session struct {
	conn      net.Conn
	legacy    bool
	replicaID int
	leader    int

	sendq chan *sessionOp
	sem   chan struct{}
	done  chan struct{}

	mu      sync.Mutex
	pending map[uint64]*sessionOp
	nextTag uint64
	failed  error

	lmu sync.Mutex // legacy mode: one round trip at a time
	rd  *bufio.Reader
}

// dialSession connects, negotiates HELLO/OHAI, and starts the session
// goroutines. A server that rejects HELLO yields a legacy-mode session on
// the same connection.
func dialSession(addr string, timeout time.Duration, depth int) (*session, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	conn.SetDeadline(time.Now().Add(timeout))
	if _, err := fmt.Fprintf(conn, "HELLO %d\n", ProtocolVersion); err != nil {
		conn.Close()
		return nil, err
	}
	rd := bufio.NewReaderSize(conn, 16<<10)
	reply, err := readLine(rd, MaxLineBytes)
	if err != nil {
		conn.Close()
		return nil, err
	}
	s := &session{
		conn:      conn,
		replicaID: -1,
		leader:    -1,
		sendq:     make(chan *sessionOp, depth),
		sem:       make(chan struct{}, depth),
		done:      make(chan struct{}),
		pending:   make(map[uint64]*sessionOp),
		rd:        rd,
	}
	switch {
	case strings.HasPrefix(reply, "OHAI "):
		f := strings.Fields(reply)
		if len(f) != 4 {
			conn.Close()
			return nil, fmt.Errorf("smr session: malformed OHAI %q", clip(reply))
		}
		s.replicaID, _ = strconv.Atoi(f[2])
		s.leader, _ = strconv.Atoi(f[3])
		conn.SetDeadline(time.Time{})
		go s.writeLoop()
		go s.readLoop()
	case strings.HasPrefix(reply, "ERR "):
		// A pre-session server: it answered the HELLO with an error and
		// is waiting for the next command — fall back to v1 right here.
		s.legacy = true
	default:
		conn.Close()
		return nil, fmt.Errorf("smr session: unexpected HELLO reply %q", clip(reply))
	}
	return s, nil
}

func (s *session) alive() bool {
	select {
	case <-s.done:
		return false
	default:
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.failed == nil
	}
}

// do runs one command on the session and waits for its result.
func (s *session) do(cmd string, timeout time.Duration) opResult {
	if s.legacy {
		return s.doLegacy(cmd, timeout)
	}
	op, err := s.begin(cmd)
	if err != nil {
		return opResult{err: err}
	}
	return s.await(op, timeout)
}

// begin registers and enqueues one tagged request, blocking while the
// pipeline window (depth) is full. It fails only before anything is sent,
// so a begin error always means "safe to retry elsewhere".
func (s *session) begin(cmd string) (*sessionOp, error) {
	select {
	case s.sem <- struct{}{}:
	case <-s.done:
		return nil, s.failure()
	}
	op := &sessionOp{cmd: cmd, ch: make(chan opResult, 1)}
	s.mu.Lock()
	if s.failed != nil {
		err := s.failed
		s.mu.Unlock()
		<-s.sem
		return nil, err
	}
	s.nextTag++
	op.tag = s.nextTag
	s.pending[op.tag] = op
	s.mu.Unlock()
	select {
	case s.sendq <- op:
	case <-s.done:
		// teardown owns the op now (it was registered) and will resolve
		// it through op.ch; fall through to await in the caller.
	}
	return op, nil
}

// await blocks until op resolves or times out. A timeout abandons the op
// (a late reply is discarded by the demux loop).
func (s *session) await(op *sessionOp, timeout time.Duration) opResult {
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case res := <-op.ch:
		return res
	case <-timer.C:
		return s.abandon(op)
	}
}

// abandon deregisters a timed-out op. If the demux resolved it
// concurrently, that result wins.
func (s *session) abandon(op *sessionOp) opResult {
	s.mu.Lock()
	if _, still := s.pending[op.tag]; still {
		delete(s.pending, op.tag)
		sent := op.sent
		s.mu.Unlock()
		<-s.sem
		return opResult{err: errOpTimeout, sent: sent}
	}
	s.mu.Unlock()
	return <-op.ch
}

// failure returns the session's terminal error.
func (s *session) failure() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed != nil {
		return s.failed
	}
	return errors.New("smr session: connection closed")
}

// teardown fails the session once: every still-pending op resolves with
// err and its recorded sent flag, so callers can re-queue what provably
// never left this process and report the correct verdict for what did.
func (s *session) teardown(err error) {
	s.mu.Lock()
	if s.failed != nil {
		s.mu.Unlock()
		return
	}
	s.failed = err
	type victim struct {
		op   *sessionOp
		sent bool
	}
	victims := make([]victim, 0, len(s.pending))
	for tag, op := range s.pending {
		victims = append(victims, victim{op, op.sent})
		delete(s.pending, tag)
	}
	s.mu.Unlock()
	close(s.done)
	s.conn.Close()
	for _, v := range victims {
		<-s.sem
		v.op.ch <- opResult{err: err, sent: v.sent}
	}
}

// writeLoop drains the send queue onto the socket, marking each op sent
// under the lock immediately before its bytes go out, and batching: every
// frame already queued is written before one flush is paid.
func (s *session) writeLoop() {
	bw := bufio.NewWriterSize(s.conn, 32<<10)
	var frame []byte
	for {
		var op *sessionOp
		select {
		case op = <-s.sendq:
		case <-s.done:
			return
		}
		for {
			s.mu.Lock()
			_, live := s.pending[op.tag]
			if live {
				op.sent = true
			}
			s.mu.Unlock()
			if live {
				frame = appendFrame(frame[:0], op.tag, op.cmd)
				if _, err := bw.Write(frame); err != nil {
					s.teardown(err)
					return
				}
			}
			// Anything else already queued joins this flush.
			select {
			case next := <-s.sendq:
				op = next
				continue
			case <-s.done:
				return
			default:
			}
			break
		}
		if err := bw.Flush(); err != nil {
			s.teardown(err)
			return
		}
	}
}

// readLoop demultiplexes tagged replies to their waiting ops. Replies for
// abandoned tags are dropped; an unparsable line means the stream lost
// framing and kills the session.
func (s *session) readLoop() {
	for {
		line, err := readLine(s.rd, MaxLineBytes)
		if err != nil {
			s.teardown(err)
			return
		}
		tag, payload, perr := parseFrame(line)
		if perr != nil {
			s.teardown(fmt.Errorf("smr session: bad reply %s", perr))
			return
		}
		s.mu.Lock()
		op := s.pending[tag]
		delete(s.pending, tag)
		s.mu.Unlock()
		if op == nil {
			continue // late reply for a timed-out op
		}
		<-s.sem
		op.ch <- opResult{reply: payload, sent: true}
	}
}

// doLegacy is the v1 fallback: one request/reply round trip at a time,
// serialized, with the connection deadline as the timeout (exactly the
// old client's discipline).
func (s *session) doLegacy(cmd string, timeout time.Duration) opResult {
	s.lmu.Lock()
	defer s.lmu.Unlock()
	if err := s.legacyFailed(); err != nil {
		return opResult{err: err}
	}
	s.conn.SetDeadline(time.Now().Add(timeout))
	if _, err := s.conn.Write(append([]byte(cmd), '\n')); err != nil {
		s.teardown(err)
		return opResult{err: err, sent: true} // a partial write may deliver
	}
	line, err := readLine(s.rd, MaxLineBytes)
	if err != nil {
		s.teardown(err)
		return opResult{err: err, sent: true}
	}
	return opResult{reply: line, sent: true}
}

func (s *session) legacyFailed() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failed
}

// checkPut validates a PUT's key and value client-side, wrapping
// violations as definite rejections.
func checkPut(key, val string) error {
	if err := checkKey(key); err != nil {
		return &outcomeError{cause: err, maybe: false}
	}
	if err := checkValue(val); err != nil {
		return &outcomeError{cause: err, maybe: false}
	}
	return nil
}

// Future is one in-flight pipelined write issued with PutAsync or
// DeleteAsync. Err blocks until the reply arrives (or the timeout passes)
// and returns the operation's outcome under the usual taxonomy. Async
// operations are never re-queued across proxies: a failure classifies
// immediately.
type Future struct {
	c    *SessionClient
	sess *session
	op   *sessionOp
	once sync.Once
	err  error
}

// resolvedFuture wraps an already-known outcome.
func resolvedFuture(err error) *Future {
	f := &Future{err: err}
	f.once.Do(func() {})
	return f
}

// PutAsync issues a pipelined write and returns immediately (blocking
// only while the session's in-flight window is full). Collect the
// outcome with Err.
func (c *SessionClient) PutAsync(key, val string) *Future {
	if err := checkPut(key, val); err != nil {
		return resolvedFuture(err)
	}
	return c.async("PUT " + key + " " + val)
}

// DeleteAsync issues a pipelined delete; see PutAsync.
func (c *SessionClient) DeleteAsync(key string) *Future {
	if err := checkKey(key); err != nil {
		return resolvedFuture(&outcomeError{cause: err, maybe: false})
	}
	return c.async("DEL " + key)
}

func (c *SessionClient) async(cmd string) *Future {
	for attempt := 0; attempt < len(c.addrs); attempt++ {
		sess, err := c.session()
		if err != nil {
			return resolvedFuture(&outcomeError{cause: err, maybe: false})
		}
		if sess.legacy {
			// No pipelining to be had: run the command synchronously.
			return resolvedFuture(c.write(cmd))
		}
		op, err := sess.begin(cmd)
		if err != nil {
			// begin fails only before anything is sent: rotate and retry.
			c.drop(sess, err)
			continue
		}
		return &Future{c: c, sess: sess, op: op}
	}
	return resolvedFuture(&outcomeError{cause: ErrNoProxies, maybe: false})
}

// Err waits for the write's outcome. Non-nil errors match exactly one of
// ErrMaybeApplied / ErrRejected.
func (f *Future) Err() error {
	f.once.Do(func() {
		res := f.sess.await(f.op, f.c.opts.Timeout)
		switch {
		case res.err != nil:
			if errors.Is(res.err, errOpTimeout) {
				// Same discipline as the synchronous path: a proxy that
				// times out is rotated away from.
				f.c.drop(f.sess, res.err)
			}
			f.err = &outcomeError{cause: res.err, maybe: res.sent}
		case res.reply != "OK":
			f.err = &outcomeError{
				cause: fmt.Errorf("smr session: %s", res.reply),
				maybe: ambiguousReply(res.reply),
			}
		}
	})
	return f.err
}
