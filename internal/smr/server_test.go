package smr_test

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/smr"
)

// startServedCluster boots a mesh cluster with a client-facing server per
// replica and returns the server addresses.
func startServedCluster(t *testing.T, n, f, e int) ([]string, []*smr.Server, func()) {
	t.Helper()
	replicas, cleanupReplicas := startCluster(t, n, f, e)
	servers := make([]*smr.Server, n)
	addrs := make([]string, n)
	for i, r := range replicas {
		srv, err := smr.NewServer(r, "127.0.0.1:0", 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = srv
		addrs[i] = srv.Addr()
	}
	cleanup := func() {
		for _, s := range servers {
			s.Close()
		}
		cleanupReplicas()
	}
	return addrs, servers, cleanup
}

func TestClientServerPutGetDelete(t *testing.T) {
	addrs, _, cleanup := startServedCluster(t, 5, 2, 2)
	defer cleanup()

	client, err := smr.NewClient(addrs, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if err := client.Put("color", "teal"); err != nil {
		t.Fatal(err)
	}
	if got, err := client.Get("color"); err != nil || got != "teal" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if err := client.Put("color", "dark teal"); err != nil {
		t.Fatal(err)
	}
	if got, _ := client.Get("color"); got != "dark teal" {
		t.Fatalf("Get after overwrite = %q", got)
	}
	if err := client.Delete("color"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Get("color"); !errors.Is(err, smr.ErrNotFound) {
		t.Fatalf("Get after delete = %v, want ErrNotFound", err)
	}
}

func TestClientFailsOverWhenProxyDies(t *testing.T) {
	addrs, servers, cleanup := startServedCluster(t, 5, 2, 2)
	defer cleanup()

	client, err := smr.NewClient(addrs, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if err := client.Put("a", "1"); err != nil {
		t.Fatal(err)
	}
	first := client.Proxy()

	// Kill the proxy the client is attached to; its replica keeps
	// running (only the client listener dies), so consensus stays live
	// and the client must fail over to another proxy.
	for _, s := range servers {
		if s.Addr() == first {
			s.Close()
		}
	}
	if err := client.Put("b", "2"); err != nil {
		t.Fatalf("put after proxy death: %v", err)
	}
	if client.Proxy() == first {
		t.Fatal("client did not rotate away from the dead proxy")
	}
	// Both writes visible through the new proxy (it applied both slots
	// before acknowledging b).
	if got, err := client.Get("b"); err != nil || got != "2" {
		t.Fatalf("Get(b) = %q, %v", got, err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got, err := client.Get("a"); err == nil && got == "1" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("write a never visible via new proxy")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestServerProtocolErrors(t *testing.T) {
	addrs, _, cleanup := startServedCluster(t, 3, 1, 1)
	defer cleanup()
	client, err := smr.NewClient(addrs[:1], 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Unknown key.
	if _, err := client.Get("missing"); !errors.Is(err, smr.ErrNotFound) {
		t.Fatalf("Get(missing) = %v", err)
	}
}

func TestServerStatsCommand(t *testing.T) {
	addrs, _, cleanup := startServedCluster(t, 3, 1, 1)
	defer cleanup()
	client, err := smr.NewClient(addrs[:1], 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// A replicated write guarantees the replica's transport has traffic.
	if err := client.Put("k", "v"); err != nil {
		t.Fatal(err)
	}
	line, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(line, "sends=") || !strings.Contains(line, "drops=") {
		t.Fatalf("STATS line = %q, want transport counters", line)
	}
	if strings.HasPrefix(line, "sends=0 ") {
		t.Fatalf("STATS line = %q, want nonzero sends after a replicated write", line)
	}
}

// dialRaw opens a raw protocol connection for wire-level tests.
func dialRaw(t *testing.T, addr string) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	return conn, bufio.NewReader(conn)
}

func readReply(t *testing.T, rd *bufio.Reader) string {
	t.Helper()
	line, err := rd.ReadString('\n')
	if err != nil {
		t.Fatalf("read reply: %v", err)
	}
	return strings.TrimRight(line, "\r\n")
}

// TestServerOversizeLineGetsErrNotDroppedConn pins the bufio.Scanner
// bug: the old server's 64 KB token limit silently killed the connection
// on a long PUT, which the client misreported as maybe-applied for a
// command that never executed. Now an oversize line must get an explicit
// "ERR line too long" reply on a connection that keeps working.
func TestServerOversizeLineGetsErrNotDroppedConn(t *testing.T) {
	addrs, servers, cleanup := startServedCluster(t, 3, 1, 1)
	defer cleanup()
	conn, rd := dialRaw(t, addrs[0])

	oversize := "PUT big " + strings.Repeat("x", smr.MaxLineBytes+100)
	if _, err := fmt.Fprintf(conn, "%s\n", oversize); err != nil {
		t.Fatal(err)
	}
	if got := readReply(t, rd); got != "ERR line too long" {
		t.Fatalf("oversize line reply = %q, want ERR line too long", got)
	}
	// The same connection still serves commands.
	fmt.Fprintln(conn, "PUT k v")
	if got := readReply(t, rd); got != "OK" {
		t.Fatalf("PUT after oversize line = %q, want OK", got)
	}
	fmt.Fprintln(conn, "GET big")
	if got := readReply(t, rd); got != "NONE" {
		t.Fatalf("the oversize PUT must not have executed; GET big = %q", got)
	}
	var tooLong uint64
	for _, s := range servers {
		tooLong += s.Counters().TooLong
	}
	if tooLong == 0 {
		t.Fatal("oversize line not counted")
	}
}

// TestServerLargeValueNowWorks: a 100 KB value sat beyond the old
// scanner's 64 KB default and killed the connection; it is well inside
// MaxLineBytes and must simply work.
func TestServerLargeValueNowWorks(t *testing.T) {
	addrs, _, cleanup := startServedCluster(t, 3, 1, 1)
	defer cleanup()
	client, err := smr.NewClient(addrs[:1], 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	big := strings.Repeat("payload-", 100*1024/8) // 100 KiB
	if err := client.Put("big", big); err != nil {
		t.Fatalf("Put(100KB): %v", err)
	}
	if got, err := client.Get("big"); err != nil || got != big {
		t.Fatalf("Get(big) = %d bytes, %v; want %d bytes back", len(got), err, len(big))
	}
}

// TestServerHelloBadVersion: an unknown HELLO variant must refuse the
// upgrade the way a v1 server would, and keep serving the legacy
// protocol on the same connection.
func TestServerHelloBadVersion(t *testing.T) {
	addrs, _, cleanup := startServedCluster(t, 3, 1, 1)
	defer cleanup()
	conn, rd := dialRaw(t, addrs[0])

	fmt.Fprintln(conn, "HELLO 99 extra")
	if got := readReply(t, rd); got != "ERR unknown command HELLO" {
		t.Fatalf("bad HELLO reply = %q", got)
	}
	fmt.Fprintln(conn, "PING")
	if got := readReply(t, rd); got != "PONG" {
		t.Fatalf("PING after refused HELLO = %q", got)
	}
}

// TestServerSessionWire drives the v2 frame protocol over a raw socket:
// OHAI negotiation, tagged replies, busy-queue and oversize behavior.
func TestServerSessionWire(t *testing.T) {
	addrs, _, cleanup := startServedCluster(t, 3, 1, 1)
	defer cleanup()
	conn, rd := dialRaw(t, addrs[0])

	fmt.Fprintln(conn, "HELLO 2")
	ohai := readReply(t, rd)
	var ver, id, leader int
	if _, err := fmt.Sscanf(ohai, "OHAI %d %d %d", &ver, &id, &leader); err != nil || ver != 2 {
		t.Fatalf("OHAI = %q (%v)", ohai, err)
	}
	fmt.Fprintln(conn, "7 PUT k v")
	if got := readReply(t, rd); got != "7 OK" {
		t.Fatalf("tagged PUT reply = %q", got)
	}
	fmt.Fprintln(conn, "8 GET k")
	if got := readReply(t, rd); got != "8 VAL v" {
		t.Fatalf("tagged GET reply = %q", got)
	}
	// Oversize frame: the tag survives the truncation, so the error is
	// addressed to it and the session continues.
	fmt.Fprintf(conn, "9 PUT big %s\n", strings.Repeat("x", smr.MaxLineBytes))
	if got := readReply(t, rd); got != "9 ERR line too long" {
		t.Fatalf("oversize frame reply = %q", got)
	}
	fmt.Fprintln(conn, "10 PING")
	if got := readReply(t, rd); got != "10 PONG" {
		t.Fatalf("PING after oversize frame = %q", got)
	}
}

func TestClientNoProxies(t *testing.T) {
	if _, err := smr.NewClient(nil, time.Second); !errors.Is(err, smr.ErrNoProxies) {
		t.Fatalf("NewClient(nil) = %v", err)
	}
	c, err := smr.NewClient([]string{"127.0.0.1:1"}, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put("k", "v"); err == nil {
		t.Fatal("Put with unreachable proxy succeeded")
	}
}
