package smr_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/smr"
)

// startServedCluster boots a mesh cluster with a client-facing server per
// replica and returns the server addresses.
func startServedCluster(t *testing.T, n, f, e int) ([]string, []*smr.Server, func()) {
	t.Helper()
	replicas, cleanupReplicas := startCluster(t, n, f, e)
	servers := make([]*smr.Server, n)
	addrs := make([]string, n)
	for i, r := range replicas {
		srv, err := smr.NewServer(r, "127.0.0.1:0", 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = srv
		addrs[i] = srv.Addr()
	}
	cleanup := func() {
		for _, s := range servers {
			s.Close()
		}
		cleanupReplicas()
	}
	return addrs, servers, cleanup
}

func TestClientServerPutGetDelete(t *testing.T) {
	addrs, _, cleanup := startServedCluster(t, 5, 2, 2)
	defer cleanup()

	client, err := smr.NewClient(addrs, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if err := client.Put("color", "teal"); err != nil {
		t.Fatal(err)
	}
	if got, err := client.Get("color"); err != nil || got != "teal" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if err := client.Put("color", "dark teal"); err != nil {
		t.Fatal(err)
	}
	if got, _ := client.Get("color"); got != "dark teal" {
		t.Fatalf("Get after overwrite = %q", got)
	}
	if err := client.Delete("color"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Get("color"); !errors.Is(err, smr.ErrNotFound) {
		t.Fatalf("Get after delete = %v, want ErrNotFound", err)
	}
}

func TestClientFailsOverWhenProxyDies(t *testing.T) {
	addrs, servers, cleanup := startServedCluster(t, 5, 2, 2)
	defer cleanup()

	client, err := smr.NewClient(addrs, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if err := client.Put("a", "1"); err != nil {
		t.Fatal(err)
	}
	first := client.Proxy()

	// Kill the proxy the client is attached to; its replica keeps
	// running (only the client listener dies), so consensus stays live
	// and the client must fail over to another proxy.
	for _, s := range servers {
		if s.Addr() == first {
			s.Close()
		}
	}
	if err := client.Put("b", "2"); err != nil {
		t.Fatalf("put after proxy death: %v", err)
	}
	if client.Proxy() == first {
		t.Fatal("client did not rotate away from the dead proxy")
	}
	// Both writes visible through the new proxy (it applied both slots
	// before acknowledging b).
	if got, err := client.Get("b"); err != nil || got != "2" {
		t.Fatalf("Get(b) = %q, %v", got, err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got, err := client.Get("a"); err == nil && got == "1" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("write a never visible via new proxy")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestServerProtocolErrors(t *testing.T) {
	addrs, _, cleanup := startServedCluster(t, 3, 1, 1)
	defer cleanup()
	client, err := smr.NewClient(addrs[:1], 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Unknown key.
	if _, err := client.Get("missing"); !errors.Is(err, smr.ErrNotFound) {
		t.Fatalf("Get(missing) = %v", err)
	}
}

func TestServerStatsCommand(t *testing.T) {
	addrs, _, cleanup := startServedCluster(t, 3, 1, 1)
	defer cleanup()
	client, err := smr.NewClient(addrs[:1], 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// A replicated write guarantees the replica's transport has traffic.
	if err := client.Put("k", "v"); err != nil {
		t.Fatal(err)
	}
	line, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(line, "sends=") || !strings.Contains(line, "drops=") {
		t.Fatalf("STATS line = %q, want transport counters", line)
	}
	if strings.HasPrefix(line, "sends=0 ") {
		t.Fatalf("STATS line = %q, want nonzero sends after a replicated write", line)
	}
}

func TestClientNoProxies(t *testing.T) {
	if _, err := smr.NewClient(nil, time.Second); !errors.Is(err, smr.ErrNoProxies) {
		t.Fatalf("NewClient(nil) = %v", err)
	}
	c, err := smr.NewClient([]string{"127.0.0.1:1"}, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put("k", "v"); err == nil {
		t.Fatal("Put with unreachable proxy succeeded")
	}
}
