package node_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/node"
	"repro/internal/transport"
)

// probe is a minimal protocol exercising host timer and decision plumbing.
type probe struct {
	id      consensus.ProcessID
	ticks   chan consensus.TimerID
	decided consensus.Value
}

func newProbe(id consensus.ProcessID) *probe {
	return &probe{id: id, ticks: make(chan consensus.TimerID, 16), decided: consensus.None}
}

func (p *probe) ID() consensus.ProcessID { return p.id }
func (p *probe) Start() []consensus.Effect {
	return []consensus.Effect{
		consensus.StartTimer{Timer: "probe.a", After: 1},
		consensus.StartTimer{Timer: "probe.b", After: 1},
		consensus.StopTimer{Timer: "probe.b"}, // must never fire
	}
}
func (p *probe) Propose(v consensus.Value) []consensus.Effect {
	p.decided = v
	return []consensus.Effect{consensus.Decide{Value: v}}
}
func (p *probe) Deliver(consensus.ProcessID, consensus.Message) []consensus.Effect { return nil }
func (p *probe) Tick(t consensus.TimerID) []consensus.Effect {
	select {
	case p.ticks <- t:
	default:
	}
	return nil
}
func (p *probe) Decision() (consensus.Value, bool) {
	return p.decided, !p.decided.IsNone()
}

func TestHostTimerStartAndStop(t *testing.T) {
	mesh := transport.NewMesh(1)
	defer mesh.Close()
	pr := newProbe(0)
	host := node.New(1, nil, time.Millisecond, pr)
	tr, err := mesh.Endpoint(0, host.Handle)
	if err != nil {
		t.Fatal(err)
	}
	host.BindTransport(tr)
	defer host.Close()
	host.Start()

	select {
	case got := <-pr.ticks:
		if got != "probe.a" {
			t.Fatalf("first tick = %s, want probe.a", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("armed timer never fired")
	}
	// The stopped timer must stay silent.
	select {
	case got := <-pr.ticks:
		t.Fatalf("stopped timer fired: %s", got)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestHostWaitDecisionAlreadyDecided(t *testing.T) {
	mesh := transport.NewMesh(1)
	defer mesh.Close()
	pr := newProbe(0)
	host := node.New(1, nil, time.Millisecond, pr)
	tr, err := mesh.Endpoint(0, host.Handle)
	if err != nil {
		t.Fatal(err)
	}
	host.BindTransport(tr)
	defer host.Close()
	host.Start()
	host.Propose(consensus.IntValue(9))

	if v, ok := host.Decision(); !ok || v != consensus.IntValue(9) {
		t.Fatalf("Decision = %v %v", v, ok)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	v, err := host.WaitDecision(ctx)
	if err != nil || v != consensus.IntValue(9) {
		t.Fatalf("WaitDecision = %v, %v", v, err)
	}
}

func TestHostWaitDecisionContextCancel(t *testing.T) {
	mesh := transport.NewMesh(1)
	defer mesh.Close()
	pr := newProbe(0)
	host := node.New(1, nil, time.Millisecond, pr)
	tr, err := mesh.Endpoint(0, host.Handle)
	if err != nil {
		t.Fatal(err)
	}
	host.BindTransport(tr)
	defer host.Close()
	host.Start()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := host.WaitDecision(ctx); err == nil {
		t.Fatal("WaitDecision returned without a decision")
	}
}

func TestHostCloseReleasesWaiters(t *testing.T) {
	mesh := transport.NewMesh(1)
	defer mesh.Close()
	pr := newProbe(0)
	host := node.New(1, nil, time.Millisecond, pr)
	tr, err := mesh.Endpoint(0, host.Handle)
	if err != nil {
		t.Fatal(err)
	}
	host.BindTransport(tr)
	host.Start()

	done := make(chan error, 1)
	go func() {
		_, err := host.WaitDecision(context.Background())
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	host.Close()
	select {
	case <-done:
		// Released (either a zero value from the closed channel or an
		// error — what matters is it does not hang).
	case <-time.After(2 * time.Second):
		t.Fatal("waiter leaked across Close")
	}
	// Operations after Close are inert.
	host.Propose(consensus.IntValue(1))
	if err := host.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
