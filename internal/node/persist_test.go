package node_test

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/node"
	"repro/internal/transport"
)

type persistMsg struct{}

func (persistMsg) Kind() string { return "test.persist" }

// shouter broadcasts on every Propose so tests can watch whether a step's
// outbound traffic survives the persistence hook.
type shouter struct{ id consensus.ProcessID }

func (s *shouter) ID() consensus.ProcessID { return s.id }
func (s *shouter) Start() []consensus.Effect {
	return nil
}
func (s *shouter) Propose(consensus.Value) []consensus.Effect {
	return []consensus.Effect{consensus.Broadcast{Msg: persistMsg{}}}
}
func (s *shouter) Deliver(consensus.ProcessID, consensus.Message) []consensus.Effect { return nil }
func (s *shouter) Tick(consensus.TimerID) []consensus.Effect                         { return nil }
func (s *shouter) Decision() (consensus.Value, bool)                                 { return consensus.None, false }

func TestPersistHookRunsBeforeFlushAndCloserOnClose(t *testing.T) {
	mesh := transport.NewMesh(2)
	defer mesh.Close()

	var received atomic.Int64
	if _, err := mesh.Endpoint(1, func(consensus.ProcessID, consensus.Message) {
		received.Add(1)
	}); err != nil {
		t.Fatal(err)
	}

	host := node.New(2, nil, time.Millisecond, &shouter{id: 0})
	tr, err := mesh.Endpoint(0, host.Handle)
	if err != nil {
		t.Fatal(err)
	}
	host.BindTransport(tr)

	var steps, closes atomic.Int64
	host.SetPersist(func() error {
		steps.Add(1)
		return nil
	}, func() error {
		closes.Add(1)
		return nil
	})
	host.Start()
	host.Propose(consensus.IntValue(1))
	if steps.Load() < 2 { // Start + Propose
		t.Fatalf("persist step ran %d times, want >= 2", steps.Load())
	}
	deadline := time.Now().Add(2 * time.Second)
	for received.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("broadcast never delivered despite successful persist")
		}
		time.Sleep(time.Millisecond)
	}
	if err := host.Close(); err != nil {
		t.Fatal(err)
	}
	if closes.Load() != 1 {
		t.Fatalf("closer ran %d times, want 1", closes.Load())
	}
	if err := host.PersistErr(); err != nil {
		t.Fatalf("unexpected persist error: %v", err)
	}
}

func TestPersistFailureDropsOutboundAndClosesHost(t *testing.T) {
	mesh := transport.NewMesh(2)
	defer mesh.Close()

	var received atomic.Int64
	if _, err := mesh.Endpoint(1, func(consensus.ProcessID, consensus.Message) {
		received.Add(1)
	}); err != nil {
		t.Fatal(err)
	}

	host := node.New(2, nil, time.Millisecond, &shouter{id: 0})
	tr, err := mesh.Endpoint(0, host.Handle)
	if err != nil {
		t.Fatal(err)
	}
	host.BindTransport(tr)
	defer host.Close()

	boom := errors.New("disk full")
	host.SetPersist(func() error { return boom }, nil)
	host.Start()
	host.Propose(consensus.IntValue(7))
	// Persisting the proposal failed: its broadcast must never escape.
	time.Sleep(50 * time.Millisecond)
	if received.Load() != 0 {
		t.Fatalf("%d messages escaped an unjournaled step", received.Load())
	}
	if !errors.Is(host.PersistErr(), boom) {
		t.Fatalf("PersistErr = %v, want %v", host.PersistErr(), boom)
	}
}
