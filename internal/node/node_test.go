package node_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/node"
	"repro/internal/omega"
	"repro/internal/transport"
)

// startMeshCluster boots n hosts over an in-process mesh, each running an Ω
// detector plus a core protocol in the given mode.
func startMeshCluster(t *testing.T, n, f, e int, mode core.Mode) ([]*node.Host, func()) {
	t.Helper()
	mesh := transport.NewMesh(n)
	hosts := make([]*node.Host, n)
	for i := 0; i < n; i++ {
		cfg := consensus.Config{ID: consensus.ProcessID(i), N: n, F: f, E: e, Delta: 10}
		det := omega.New(cfg, 0)
		proto := core.NewUnchecked(cfg, mode, core.DefaultOptions(), det)
		host := node.New(n, nil, time.Millisecond, det, proto)
		tr, err := mesh.Endpoint(cfg.ID, host.Handle)
		if err != nil {
			t.Fatal(err)
		}
		host.BindTransport(tr)
		hosts[i] = host
	}
	for _, h := range hosts {
		h.Start()
	}
	cleanup := func() {
		for _, h := range hosts {
			h.Close()
		}
		mesh.Close()
	}
	return hosts, cleanup
}

func TestMeshClusterDecidesLoneProposal(t *testing.T) {
	hosts, cleanup := startMeshCluster(t, 5, 2, 2, core.ModeObject)
	defer cleanup()

	hosts[3].Propose(consensus.IntValue(42))

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i, h := range hosts {
		v, err := h.WaitDecision(ctx)
		if err != nil {
			t.Fatalf("host %d: %v", i, err)
		}
		if v != consensus.IntValue(42) {
			t.Fatalf("host %d decided %v, want v(42)", i, v)
		}
	}
}

func TestMeshClusterAgreesUnderConcurrentProposals(t *testing.T) {
	hosts, cleanup := startMeshCluster(t, 5, 2, 1, core.ModeObject)
	defer cleanup()

	for i, h := range hosts {
		h.Propose(consensus.IntValue(int64(10 + i)))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var first consensus.Value
	for i, h := range hosts {
		v, err := h.WaitDecision(ctx)
		if err != nil {
			t.Fatalf("host %d: %v", i, err)
		}
		if i == 0 {
			first = v
		} else if v != first {
			t.Fatalf("host %d decided %v, host 0 decided %v", i, v, first)
		}
	}
}

func TestTCPClusterDecides(t *testing.T) {
	const n, f, e = 3, 1, 1
	codec := consensus.NewCodec()
	core.RegisterMessages(codec)
	omega.RegisterMessages(codec)

	// Reserve ports by listening on :0 first.
	addrs := make(map[consensus.ProcessID]string, n)
	hosts := make([]*node.Host, n)
	trs := make([]*transport.TCP, n)
	for i := 0; i < n; i++ {
		addrs[consensus.ProcessID(i)] = "127.0.0.1:0"
	}
	// Start transports one by one, learning real addresses as we go.
	for i := 0; i < n; i++ {
		p := consensus.ProcessID(i)
		cfg := consensus.Config{ID: p, N: n, F: f, E: e, Delta: 10}
		det := omega.New(cfg, 0)
		proto := core.NewUnchecked(cfg, core.ModeObject, core.DefaultOptions(), det)
		host := node.New(n, nil, time.Millisecond, det, proto)
		tr, err := transport.NewTCP(p, addrs, codec, host.Handle)
		if err != nil {
			t.Fatal(err)
		}
		addrs[p] = tr.Addr()
		host.BindTransport(tr)
		hosts[i], trs[i] = host, tr
	}
	// Publish the real (post-":0") addresses to every transport.
	for _, tr := range trs {
		for p, a := range addrs {
			tr.SetPeerAddr(p, a)
		}
	}
	defer func() {
		for _, h := range hosts {
			h.Close()
		}
	}()
	for _, h := range hosts {
		h.Start()
	}

	hosts[1].Propose(consensus.IntValue(7))

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i, h := range hosts {
		v, err := h.WaitDecision(ctx)
		if err != nil {
			t.Fatalf("host %d: %v", i, err)
		}
		if v != consensus.IntValue(7) {
			t.Fatalf("host %d decided %v", i, v)
		}
	}
	_ = trs
}
