// Package node hosts deterministic protocol state machines on a real
// transport with wall-clock timers — the live-deployment counterpart of the
// simulator. A Host runs one or more protocols (typically an Ω detector and
// a consensus protocol) behind a single mutex, translating protocol ticks
// to wall time and protocol effects to transport sends.
package node

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/consensus"
	"repro/internal/transport"
)

// ErrClosed is returned by operations on a closed Host.
var ErrClosed = errors.New("node: host closed")

// Host binds protocols to a transport.
type Host struct {
	n    int
	self consensus.ProcessID
	tr   transport.Transport
	tick time.Duration // wall-clock length of one protocol tick

	mu      sync.Mutex
	protos  []consensus.Protocol
	gens    map[consensus.TimerID]int64
	timers  map[consensus.TimerID]*time.Timer
	decided consensus.Value
	waiters []chan consensus.Value
	closed  bool

	// persistStep, when set, runs under the lock after every step and
	// before any resulting sends are flushed; persistClose runs on Close.
	persistStep  func() error
	persistClose func() error
	persistErr   error
}

// New builds a host for n processes with the given tick length. The
// protocols run in order for every event; distinct protocols must use
// distinct timer IDs and message kinds (all registered kinds do). tr may be
// nil at construction when the transport needs the host's Handle method
// first — call BindTransport before Start in that case.
func New(n int, tr transport.Transport, tick time.Duration, protos ...consensus.Protocol) *Host {
	h := &Host{
		n:       n,
		tr:      tr,
		tick:    tick,
		protos:  protos,
		gens:    make(map[consensus.TimerID]int64),
		timers:  make(map[consensus.TimerID]*time.Timer),
		decided: consensus.None,
	}
	if tr != nil {
		h.self = tr.Self()
	}
	return h
}

// Handle is the transport handler; wire it when constructing the transport:
//
//	host := node.New(...)
//	tr, err := transport.NewTCP(self, addrs, codec, host.Handle)
//	host.BindTransport(tr)
func (h *Host) Handle(from consensus.ProcessID, msg consensus.Message) {
	h.mu.Lock()
	outbound := h.persistLocked(h.deliverLocked(from, msg))
	h.mu.Unlock()
	h.flush(outbound)
}

// SetPersist installs a persistence hook: step runs under the host lock
// after every protocol step (Start, Propose, deliver, tick) and before any
// message that step produced is flushed, so no promise or vote escapes the
// process without being durable first; closer runs once on Close. A step
// failure closes the host and discards the step's outbound messages —
// after a journaling failure, silence is the only safe output. Call before
// Start.
func (h *Host) SetPersist(step func() error, closer func() error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.persistStep = step
	h.persistClose = closer
}

// persistLocked runs the persistence hook over a step's outbound batch.
func (h *Host) persistLocked(outbound []outboundMsg) []outboundMsg {
	if h.closed {
		return nil
	}
	if h.persistStep == nil {
		return outbound
	}
	if err := h.persistStep(); err != nil {
		h.persistErr = err
		h.closed = true
		for _, t := range h.timers {
			t.Stop()
		}
		for _, ch := range h.waiters {
			close(ch)
		}
		h.waiters = nil
		return nil
	}
	return outbound
}

// PersistErr reports the journaling failure that closed the host, if any.
func (h *Host) PersistErr() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.persistErr
}

// BindTransport installs the transport after construction, for the
// chicken-and-egg case where the transport needs the host's handler.
func (h *Host) BindTransport(tr transport.Transport) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.tr = tr
	h.self = tr.Self()
}

// Start boots every protocol.
func (h *Host) Start() {
	h.mu.Lock()
	var outbound []outboundMsg
	for _, p := range h.protos {
		outbound = append(outbound, h.applyLocked(p, p.Start())...)
	}
	outbound = h.persistLocked(outbound)
	h.mu.Unlock()
	h.flush(outbound)
}

// Propose submits v to every hosted protocol (non-consensus protocols
// ignore it).
func (h *Host) Propose(v consensus.Value) {
	h.mu.Lock()
	var outbound []outboundMsg
	for _, p := range h.protos {
		outbound = append(outbound, h.applyLocked(p, p.Propose(v))...)
	}
	outbound = h.persistLocked(outbound)
	h.mu.Unlock()
	h.flush(outbound)
}

// Decision returns the decided value, if any.
func (h *Host) Decision() (consensus.Value, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.decided.IsNone() {
		return consensus.None, false
	}
	return h.decided, true
}

// WaitDecision blocks until a decision is reached or ctx is done.
func (h *Host) WaitDecision(ctx context.Context) (consensus.Value, error) {
	h.mu.Lock()
	if !h.decided.IsNone() {
		v := h.decided
		h.mu.Unlock()
		return v, nil
	}
	if h.closed {
		h.mu.Unlock()
		return consensus.None, ErrClosed
	}
	ch := make(chan consensus.Value, 1)
	h.waiters = append(h.waiters, ch)
	h.mu.Unlock()

	select {
	case v := <-ch:
		return v, nil
	case <-ctx.Done():
		return consensus.None, fmt.Errorf("node: %w", ctx.Err())
	}
}

// Close stops timers and closes the transport.
func (h *Host) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	for _, t := range h.timers {
		t.Stop()
	}
	for _, ch := range h.waiters {
		close(ch)
	}
	h.waiters = nil
	closer := h.persistClose
	h.mu.Unlock()
	var firstErr error
	if closer != nil {
		firstErr = closer()
	}
	if err := h.tr.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// outboundMsg is a send deferred until the host lock is released (transport
// sends may block on dialing).
type outboundMsg struct {
	to  consensus.ProcessID
	msg consensus.Message
}

// deliverLocked routes one message through every protocol.
func (h *Host) deliverLocked(from consensus.ProcessID, msg consensus.Message) []outboundMsg {
	if h.closed {
		return nil
	}
	var outbound []outboundMsg
	for _, p := range h.protos {
		outbound = append(outbound, h.applyLocked(p, p.Deliver(from, msg))...)
	}
	return outbound
}

// applyLocked interprets effects; network sends are returned for later
// flushing, local (self-addressed) messages are delivered inline.
func (h *Host) applyLocked(p consensus.Protocol, effects []consensus.Effect) []outboundMsg {
	var outbound []outboundMsg
	for _, eff := range effects {
		switch eff := eff.(type) {
		case consensus.Send:
			if eff.To == h.self {
				outbound = append(outbound, h.deliverLocked(h.self, eff.Msg)...)
				continue
			}
			outbound = append(outbound, outboundMsg{to: eff.To, msg: eff.Msg})
		case consensus.Broadcast:
			for i := 0; i < h.n; i++ {
				to := consensus.ProcessID(i)
				if to == h.self {
					if eff.Self {
						outbound = append(outbound, h.deliverLocked(h.self, eff.Msg)...)
					}
					continue
				}
				outbound = append(outbound, outboundMsg{to: to, msg: eff.Msg})
			}
		case consensus.StartTimer:
			h.startTimerLocked(p, eff)
		case consensus.StopTimer:
			h.gens[eff.Timer]++
		case consensus.Decide:
			if h.decided.IsNone() {
				h.decided = eff.Value
				for _, ch := range h.waiters {
					ch <- eff.Value
				}
				h.waiters = nil
			}
		}
	}
	return outbound
}

func (h *Host) startTimerLocked(p consensus.Protocol, eff consensus.StartTimer) {
	h.gens[eff.Timer]++
	gen := h.gens[eff.Timer]
	if t, ok := h.timers[eff.Timer]; ok {
		t.Stop()
	}
	d := time.Duration(eff.After) * h.tick
	h.timers[eff.Timer] = time.AfterFunc(d, func() {
		h.mu.Lock()
		if h.closed || h.gens[eff.Timer] != gen {
			h.mu.Unlock()
			return
		}
		outbound := h.persistLocked(h.applyLocked(p, p.Tick(eff.Timer)))
		h.mu.Unlock()
		h.flush(outbound)
	})
}

// flush performs the deferred network sends.
func (h *Host) flush(outbound []outboundMsg) {
	for _, o := range outbound {
		// Errors are expected while peers boot or after they crash;
		// protocol timers retransmit.
		_ = h.tr.Send(o.to, o.msg)
	}
}
