package storage_test

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/storage"
)

func snapFiles(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(matches)
	return matches
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	blob := []byte(`{"applied":7,"store":{"a":"1"}}`)
	if err := storage.Save(dir, 7, blob); err != nil {
		t.Fatal(err)
	}
	idx, data, ok, err := storage.Load(dir)
	if err != nil || !ok {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	if idx != 7 || !bytes.Equal(data, blob) {
		t.Fatalf("load idx=%d data=%q", idx, data)
	}
}

func TestLoadEmptyDirAndMissingDir(t *testing.T) {
	dir := t.TempDir()
	if _, _, ok, err := storage.Load(dir); ok || err != nil {
		t.Fatalf("empty dir: ok=%v err=%v", ok, err)
	}
	if _, _, ok, err := storage.Load(filepath.Join(dir, "nope")); ok || err != nil {
		t.Fatalf("missing dir: ok=%v err=%v", ok, err)
	}
}

func TestNewestWinsAndPruneKeepsFallback(t *testing.T) {
	dir := t.TempDir()
	for i := uint64(1); i <= 5; i++ {
		if err := storage.Save(dir, i*10, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	idx, data, ok, err := storage.Load(dir)
	if err != nil || !ok || idx != 50 || data[0] != 5 {
		t.Fatalf("load: idx=%d data=%v ok=%v err=%v", idx, data, ok, err)
	}
	if files := snapFiles(t, dir); len(files) != 2 {
		t.Fatalf("prune kept %d generations, want 2: %v", len(files), files)
	}
}

func TestCorruptNewestFallsBackToPrevious(t *testing.T) {
	dir := t.TempDir()
	if err := storage.Save(dir, 10, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := storage.Save(dir, 20, []byte("new")); err != nil {
		t.Fatal(err)
	}
	files := snapFiles(t, dir)
	if len(files) != 2 {
		t.Fatalf("want 2 generations, got %v", files)
	}
	// Flip a payload bit in the newest snapshot.
	newest := files[len(files)-1]
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}
	idx, blob, ok, err := storage.Load(dir)
	if err != nil || !ok {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	if idx != 10 || string(blob) != "old" {
		t.Fatalf("fallback gave idx=%d blob=%q", idx, blob)
	}
}

func TestTruncatedNewestFallsBack(t *testing.T) {
	dir := t.TempDir()
	if err := storage.Save(dir, 1, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := storage.Save(dir, 2, []byte("second")); err != nil {
		t.Fatal(err)
	}
	files := snapFiles(t, dir)
	newest := files[len(files)-1]
	fi, err := os.Stat(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(newest, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	idx, blob, ok, err := storage.Load(dir)
	if err != nil || !ok || idx != 1 || string(blob) != "first" {
		t.Fatalf("fallback: idx=%d blob=%q ok=%v err=%v", idx, blob, ok, err)
	}
}

func TestStaleTempFilesAreIgnoredAndPruned(t *testing.T) {
	dir := t.TempDir()
	// A crash between write and rename leaves a .tmp file behind.
	stale := filepath.Join(dir, "snap-00000000000000ff.snap.tmp")
	if err := os.WriteFile(stale, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := storage.Load(dir); ok || err != nil {
		t.Fatalf("tmp file treated as snapshot: ok=%v err=%v", ok, err)
	}
	if err := storage.Save(dir, 3, []byte("real")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale tmp not pruned: %v", err)
	}
	idx, blob, ok, err := storage.Load(dir)
	if err != nil || !ok || idx != 3 || string(blob) != "real" {
		t.Fatalf("load after save: idx=%d blob=%q ok=%v err=%v", idx, blob, ok, err)
	}
}
