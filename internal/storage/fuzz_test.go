package storage

import (
	"bytes"
	"testing"
)

// FuzzSnapshotRoundTrip drives arbitrary (index, payload) pairs through
// Save/Load — the on-disk codec pair the codecsym analyzer watches
// statically. Invariants: Load returns exactly what Save wrote (index and
// bytes), and a second Save at a higher index wins, so recovery always
// boots from the newest snapshot.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add(uint64(0), []byte(nil))
	f.Add(uint64(1), []byte("state"))
	f.Add(uint64(1<<40), bytes.Repeat([]byte{0x5a}, 1<<10))

	f.Fuzz(func(t *testing.T, index uint64, data []byte) {
		dir := t.TempDir()
		if err := Save(dir, index, data); err != nil {
			t.Fatalf("Save(index=%d, %d bytes): %v", index, len(data), err)
		}
		gotIndex, got, ok, err := Load(dir)
		if err != nil || !ok {
			t.Fatalf("Load: ok=%t err=%v", ok, err)
		}
		if gotIndex != index {
			t.Fatalf("Load index = %d, want %d", gotIndex, index)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("round trip changed payload: wrote %d bytes, read %d", len(data), len(got))
		}

		// A newer snapshot must shadow the one we just wrote.
		if err := Save(dir, index+1, []byte("newer")); err != nil {
			t.Fatalf("Save(index=%d): %v", index+1, err)
		}
		gotIndex, got, ok, err = Load(dir)
		if err != nil || !ok {
			t.Fatalf("Load after second Save: ok=%t err=%v", ok, err)
		}
		if gotIndex != index+1 || !bytes.Equal(got, []byte("newer")) {
			t.Fatalf("Load = (%d, %q), want (%d, %q)", gotIndex, got, index+1, "newer")
		}
	})
}
