// Package storage writes and reads atomic store snapshots for the durable
// SMR replica. A snapshot is one opaque blob keyed by the applied index it
// covers; internal/smr serializes its state into the blob and internal/wal
// records appended after the snapshot's cut-off complete it. Writes are
// atomic in the temp-file + rename sense: a crash at any point leaves
// either the previous snapshot or the new one, never a half-written file
// (the blob is additionally CRC32C-framed, so even a corrupted rename
// target is detected and skipped in favour of an older snapshot).
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Snapshot file layout, little-endian:
//
//	offset 0   8 bytes  magic "SNAP0001"
//	offset 8   u64      index the snapshot covers (applied index)
//	offset 16  u32      CRC32C over the data
//	offset 20           data
const (
	snapMagic      = "SNAP0001"
	snapHeaderSize = 20
	snapSuffix     = ".snap"
	snapPrefix     = "snap-"
	tmpSuffix      = ".tmp"
)

// keepSnapshots is how many generations Save retains: the newest plus one
// fallback in case the newest is found corrupt at load time.
const keepSnapshots = 2

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt marks a snapshot file whose frame or checksum is invalid.
var ErrCorrupt = errors.New("storage: corrupt snapshot")

func snapName(index uint64) string {
	return fmt.Sprintf("%s%016x%s", snapPrefix, index, snapSuffix)
}

func parseSnapName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
		return 0, false
	}
	hexPart := strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix)
	if len(hexPart) != 16 {
		return 0, false
	}
	index, err := strconv.ParseUint(hexPart, 16, 64)
	if err != nil {
		return 0, false
	}
	return index, true
}

// Save atomically writes a snapshot covering index: the frame goes to a
// temp file, is fsynced, renamed into place, and the directory is fsynced;
// older generations beyond a small fallback window are then removed.
func Save(dir string, index uint64, data []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	frame := make([]byte, snapHeaderSize+len(data))
	copy(frame, snapMagic)
	binary.LittleEndian.PutUint64(frame[8:16], index)
	binary.LittleEndian.PutUint32(frame[16:20], crc32.Checksum(data, castagnoli))
	copy(frame[snapHeaderSize:], data)

	final := filepath.Join(dir, snapName(index))
	tmp := final + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if _, err := f.Write(frame); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	return prune(dir)
}

// Load returns the newest valid snapshot in dir. A corrupt or torn newest
// snapshot is silently skipped in favour of the next generation; ok is
// false when no valid snapshot exists.
func Load(dir string) (index uint64, data []byte, ok bool, err error) {
	names, err := list(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil, false, nil
		}
		return 0, nil, false, err
	}
	// Newest first.
	for i := len(names) - 1; i >= 0; i-- {
		idx, blob, err := read(filepath.Join(dir, names[i]))
		if err != nil {
			continue // corrupt generation: fall back to the previous one
		}
		return idx, blob, true, nil
	}
	return 0, nil, false, nil
}

// read parses and validates one snapshot file.
func read(path string) (uint64, []byte, error) {
	frame, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, err
	}
	if len(frame) < snapHeaderSize || string(frame[:8]) != snapMagic {
		return 0, nil, ErrCorrupt
	}
	index := binary.LittleEndian.Uint64(frame[8:16])
	want := binary.LittleEndian.Uint32(frame[16:20])
	data := frame[snapHeaderSize:]
	if crc32.Checksum(data, castagnoli) != want {
		return 0, nil, ErrCorrupt
	}
	return index, data, nil
}

// list returns the snapshot file names in dir sorted ascending by index
// (name order is index order by construction).
func list(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if _, ok := parseSnapName(e.Name()); ok {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// prune removes snapshot generations beyond the fallback window and any
// stale temp files from interrupted saves.
func prune(dir string) error {
	names, err := list(dir)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	for len(names) > keepSnapshots {
		if err := os.Remove(filepath.Join(dir, names[0])); err != nil {
			return fmt.Errorf("storage: %w", err)
		}
		names = names[1:]
	}
	tmps, err := filepath.Glob(filepath.Join(dir, snapPrefix+"*"+tmpSuffix))
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	for _, tmp := range tmps {
		os.Remove(tmp)
	}
	return nil
}

// syncDir fsyncs a directory, making renames in it durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}
