// Command bench regenerates every table and figure of the reproduction
// (DESIGN.md §4) and prints them as markdown tables. With -out it also
// writes the report to a file (EXPERIMENTS.md is produced this way).
//
// Usage:
//
//	bench                 # run everything
//	bench -exp T1,F3      # run selected experiments
//	bench -soak-runs 500  # deeper T5 campaign
//	bench -out report.md  # additionally write a file
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		expFlag  = flag.String("exp", "", "comma-separated experiment IDs (default: all)")
		soakRuns = flag.Int("soak-runs", 150, "runs per row for the T5 soak campaign")
		outPath  = flag.String("out", "", "also write the report to this file")
		csvDir   = flag.String("csv", "", "also write each experiment as <dir>/<ID>.csv")
		f4JSON   = flag.String("f4-json", "", "run F4b and write its machine-readable report to this file (BENCH_F4.json)")
		f7JSON   = flag.String("f7-json", "", "run F7 and write its machine-readable report to this file (BENCH_F7.json)")
		f8JSON   = flag.String("f8-json", "", "run F8 and write its machine-readable report to this file (BENCH_F8.json)")
		f9JSON   = flag.String("f9-json", "", "run F9 and write its machine-readable report to this file (BENCH_F9.json)")
		f10JSON  = flag.String("f10-json", "", "run F10 and write its machine-readable report to this file (BENCH_F10.json)")
		f10Short = flag.Bool("f10-short", false, "run F10 in its CI-sized short mode (Mesh fabric, compressed delays)")
		pipeline = flag.Int("pipeline", 0, "session-client in-flight depth for F7's deep rows (0 = default 16)")
	)
	flag.Parse()

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	var out io.Writer = os.Stdout
	var f *os.File
	if *outPath != "" {
		var err error
		f, err = os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	fmt.Fprintf(out, "# Reproduction report — Revisiting Lower Bounds for Two-Step Consensus\n\n")
	fmt.Fprintf(out, "Generated %s by `cmd/bench`. See DESIGN.md §4 for the experiment index.\n\n",
		time.Now().UTC().Format(time.RFC3339))

	exps := bench.Experiments(*soakRuns)
	// -pipeline applies wherever F7 runs, selected or not.
	exps["F7"] = func() *bench.Result {
		res, _ := bench.Sessions(*pipeline)
		return res
	}
	ids := bench.ExperimentIDs()
	if *expFlag != "" {
		var sel []string
		for _, raw := range strings.Split(*expFlag, ",") {
			id, ok := resolveExpID(ids, strings.TrimSpace(raw))
			if !ok {
				return fmt.Errorf("unknown experiment %q (have %v)", strings.TrimSpace(raw), ids)
			}
			sel = append(sel, id)
		}
		ids = sel
	}
	if *f4JSON != "" {
		// F4b runs once here (with the raw report captured), not again in the
		// loop below.
		var kept []string
		for _, id := range ids {
			if id != "F4b" {
				kept = append(kept, id)
			}
		}
		ids = kept
		start := time.Now()
		res, report := bench.HotPath()
		if _, err := res.WriteTo(out); err != nil {
			return err
		}
		fmt.Fprintf(out, "_F4b completed in %s_\n\n", time.Since(start).Round(time.Millisecond))
		if err := writeF4JSON(*f4JSON, report); err != nil {
			return err
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, "F4b", res); err != nil {
				return err
			}
		}
	}
	if *f7JSON != "" {
		// Same arrangement as -f4-json: F7 runs once, report captured.
		var kept []string
		for _, id := range ids {
			if id != "F7" {
				kept = append(kept, id)
			}
		}
		ids = kept
		start := time.Now()
		res, report := bench.Sessions(*pipeline)
		if _, err := res.WriteTo(out); err != nil {
			return err
		}
		fmt.Fprintf(out, "_F7 completed in %s_\n\n", time.Since(start).Round(time.Millisecond))
		if err := writeF7JSON(*f7JSON, report); err != nil {
			return err
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, "F7", res); err != nil {
				return err
			}
		}
	}
	if *f8JSON != "" {
		// Same arrangement as -f7-json: F8 runs once, report captured.
		var kept []string
		for _, id := range ids {
			if id != "F8" {
				kept = append(kept, id)
			}
		}
		ids = kept
		start := time.Now()
		res, report := bench.GroupScaling()
		if _, err := res.WriteTo(out); err != nil {
			return err
		}
		fmt.Fprintf(out, "_F8 completed in %s_\n\n", time.Since(start).Round(time.Millisecond))
		if err := writeF8JSON(*f8JSON, report); err != nil {
			return err
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, "F8", res); err != nil {
				return err
			}
		}
	}
	if *f9JSON != "" {
		// Same arrangement as -f8-json: F9 runs once, report captured.
		var kept []string
		for _, id := range ids {
			if id != "F9" {
				kept = append(kept, id)
			}
		}
		ids = kept
		start := time.Now()
		res, report := bench.ReadMix()
		if _, err := res.WriteTo(out); err != nil {
			return err
		}
		fmt.Fprintf(out, "_F9 completed in %s_\n\n", time.Since(start).Round(time.Millisecond))
		if err := writeF9JSON(*f9JSON, report); err != nil {
			return err
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, "F9", res); err != nil {
				return err
			}
		}
	}
	if *f10JSON != "" || *f10Short {
		// Same arrangement as -f9-json: F10 runs once, report captured.
		var kept []string
		for _, id := range ids {
			if id != "F10" {
				kept = append(kept, id)
			}
		}
		ids = kept
		opts := bench.DefaultWANSuiteOptions()
		if *f10Short {
			opts = bench.ShortWANSuiteOptions()
		}
		start := time.Now()
		res, report := bench.WANSuite(opts)
		if _, err := res.WriteTo(out); err != nil {
			return err
		}
		fmt.Fprintf(out, "_F10 completed in %s_\n\n", time.Since(start).Round(time.Millisecond))
		if *f10JSON != "" {
			if err := writeF10JSON(*f10JSON, report); err != nil {
				return err
			}
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, "F10", res); err != nil {
				return err
			}
		}
	}
	for _, id := range ids {
		start := time.Now()
		res := exps[id]()
		if _, err := res.WriteTo(out); err != nil {
			return err
		}
		fmt.Fprintf(out, "_%s completed in %s_\n\n", id, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			if err := writeCSV(*csvDir, id, res); err != nil {
				return err
			}
		}
	}
	return nil
}

// resolveExpID matches a user-supplied experiment id case-insensitively
// against the registry (ids like "T3b" are mixed-case).
func resolveExpID(ids []string, raw string) (string, bool) {
	for _, id := range ids {
		if strings.EqualFold(id, raw) {
			return id, true
		}
	}
	return "", false
}

// writeF4JSON commits the F4b report to disk with a generation timestamp,
// giving future changes a machine-readable perf trajectory to diff against.
func writeF4JSON(path string, report *bench.HotPathReport) error {
	wrapped := struct {
		GeneratedAt string `json:"generatedAt"`
		*bench.HotPathReport
	}{time.Now().UTC().Format(time.RFC3339), report}
	return writeJSON(path, wrapped)
}

// writeF7JSON commits the F7 report (BENCH_F7.json) the same way.
func writeF7JSON(path string, report *bench.SessionsReport) error {
	wrapped := struct {
		GeneratedAt string `json:"generatedAt"`
		*bench.SessionsReport
	}{time.Now().UTC().Format(time.RFC3339), report}
	return writeJSON(path, wrapped)
}

// writeF8JSON commits the F8 report (BENCH_F8.json) the same way.
func writeF8JSON(path string, report *bench.GroupsReport) error {
	wrapped := struct {
		GeneratedAt string `json:"generatedAt"`
		*bench.GroupsReport
	}{time.Now().UTC().Format(time.RFC3339), report}
	return writeJSON(path, wrapped)
}

// writeF9JSON commits the F9 report (BENCH_F9.json) the same way.
func writeF9JSON(path string, report *bench.ReadsReport) error {
	wrapped := struct {
		GeneratedAt string `json:"generatedAt"`
		*bench.ReadsReport
	}{time.Now().UTC().Format(time.RFC3339), report}
	return writeJSON(path, wrapped)
}

// writeF10JSON commits the F10 report (BENCH_F10.json) the same way.
func writeF10JSON(path string, report *bench.WANSuiteReport) error {
	wrapped := struct {
		GeneratedAt string `json:"generatedAt"`
		*bench.WANSuiteReport
	}{time.Now().UTC().Format(time.RFC3339), report}
	return writeJSON(path, wrapped)
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func writeCSV(dir, id string, res *bench.Result) error {
	f, err := os.Create(dir + "/" + id + ".csv")
	if err != nil {
		return err
	}
	defer f.Close()
	return res.WriteCSV(f)
}
