// Command simrun executes a single named scenario in the simulator and
// prints the resulting trace verdicts. It is the exploratory companion to
// cmd/bench: pick a protocol, thresholds, crash set and seed, and see what
// happens.
//
// Scenarios:
//
//	twostep    one E-faulty synchronous run (choose -crash, -prefer)
//	coverage   the full Definition 4 / A.1 check at the given n
//	soak       randomized partial-synchrony campaign
//	witness    the Appendix-B lower-bound construction at the given n
//	mc         bounded exhaustive model checking (-ticks, -crashes)
//
// Examples:
//
//	simrun -scenario coverage -protocol core-task -f 2 -e 2
//	simrun -scenario witness  -protocol core-task -f 2 -e 2 -n 5
//	simrun -scenario twostep  -protocol fastpaxos -f 1 -e 1 -n 4 -crash 0
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/lowerbound"
	"repro/internal/mc"
	"repro/internal/protocols"
	"repro/internal/quorum"
	"repro/internal/runner"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "simrun:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scenario = flag.String("scenario", "coverage", "twostep | coverage | soak | witness")
		protocol = flag.String("protocol", protocols.CoreTask, strings.Join(protocols.Names(), " | "))
		fFlag    = flag.Int("f", 2, "resilience threshold f")
		eFlag    = flag.Int("e", 1, "fast threshold e")
		nFlag    = flag.Int("n", 0, "process count (default: protocol's minimum)")
		seed     = flag.Int64("seed", 1, "random seed")
		runs     = flag.Int("runs", 100, "runs for the soak scenario")
		crash    = flag.String("crash", "", "comma-separated ids to crash at t=0 (twostep)")
		prefer   = flag.Int("prefer", -1, "preferred proposer (twostep; default: highest input)")
		object   = flag.Bool("object", false, "use the object formulation where it applies")
		diagram  = flag.Bool("diagram", false, "print a message-flow diagram (twostep scenario)")
		ticks    = flag.Int("ticks", 0, "mc scenario: timer firings allowed per process")
		crashes  = flag.Int("crashes", 0, "mc scenario: crash budget for the adversary")
		maxState = flag.Int("max-states", 200000, "mc scenario: state cap")
	)
	flag.Parse()

	name := *protocol
	if *object && name == protocols.CoreTask {
		name = protocols.CoreObject
	}
	fac, err := protocols.ByName(name)
	if err != nil {
		return err
	}
	n := *nFlag
	if n == 0 {
		if n, err = protocols.MinProcesses(name, *fFlag, *eFlag); err != nil {
			return err
		}
	}
	sc := runner.Scenario{N: n, F: *fFlag, E: *eFlag, Delta: 10, Seed: *seed}
	fmt.Printf("scenario=%s protocol=%s n=%d f=%d e=%d seed=%d\n\n", *scenario, name, n, *fFlag, *eFlag, *seed)

	switch *scenario {
	case "twostep":
		var faulty []consensus.ProcessID
		if *crash != "" {
			for _, tok := range strings.Split(*crash, ",") {
				id, err := strconv.Atoi(strings.TrimSpace(tok))
				if err != nil {
					return fmt.Errorf("bad -crash: %w", err)
				}
				faulty = append(faulty, consensus.ProcessID(id))
			}
		}
		inputs := make(map[consensus.ProcessID]consensus.Value, n)
		for i := 0; i < n; i++ {
			inputs[consensus.ProcessID(i)] = consensus.IntValue(int64(i + 1))
		}
		pref := consensus.ProcessID(n - 1)
		if *prefer >= 0 {
			pref = consensus.ProcessID(*prefer)
		}
		tr, err := runner.EFaultySync(fac, sc, runner.SyncRun{
			Faulty: faulty, Inputs: inputs, Prefer: pref,
			Horizon:      consensus.Time(200 * sc.Delta),
			KeepMessages: *diagram,
		})
		if err != nil {
			return err
		}
		if *diagram {
			if err := tr.WriteFlow(os.Stdout, sc.Delta); err != nil {
				return err
			}
			fmt.Println()
		}
		fmt.Printf("two-step processes (≤2Δ): %v\n", tr.TwoStepProcesses(sc.Delta))
		for i := 0; i < n; i++ {
			if d, ok := tr.DecisionOf(consensus.ProcessID(i)); ok {
				fmt.Printf("  %s decided %s at t=%d\n", d.P, d.Value, d.At)
			}
		}
		fmt.Printf("validity=%v agreement=%v\n", errMark(tr.CheckValidity()), errMark(tr.CheckAgreement()))

	case "coverage":
		var report runner.TwoStepReport
		if name == protocols.CoreObject {
			report = runner.ObjectTwoStep(fac, sc)
		} else {
			report = runner.TaskTwoStep(fac, sc)
		}
		fmt.Println(report)
		for _, fl := range append(report.Item1.Failures, report.Item2.Failures...) {
			fmt.Println("  failure:", fl)
		}

	case "soak":
		res := runner.Soak(fac, sc, runner.SoakOptions{
			Runs: *runs, MaxCrashes: *fFlag, Object: name == protocols.CoreObject,
		})
		fmt.Println(res)
		for _, fl := range res.Failures {
			fmt.Println("  failure:", fl)
		}

	case "witness":
		var w lowerbound.Witness
		if name == protocols.CoreObject {
			w, err = lowerbound.ObjectWitness(fac, n, *fFlag, *eFlag, sc.Delta)
		} else {
			w, err = lowerbound.TaskWitness(fac, n, *fFlag, *eFlag, sc.Delta)
		}
		if err != nil {
			return err
		}
		fmt.Println(w)
		mode := quorum.Task
		if name == protocols.CoreObject {
			mode = quorum.Object
		}
		fmt.Printf("tight bound for %s: n ≥ %d\n", mode, quorum.MinProcesses(mode, *fFlag, *eFlag))

	case "mc":
		mode := core.ModeTask
		if name == protocols.CoreObject {
			mode = core.ModeObject
		}
		mcFac := func(cfg consensus.Config) consensus.Protocol {
			return core.NewUnchecked(cfg, mode, core.DefaultOptions(), consensus.FixedLeader(0))
		}
		if name != protocols.CoreTask && name != protocols.CoreObject {
			return fmt.Errorf("mc scenario supports core-task and core-object (got %q)", name)
		}
		inputs := make(map[consensus.ProcessID]consensus.Value, n)
		for i := 0; i < n; i++ {
			inputs[consensus.ProcessID(i)] = consensus.IntValue(int64(1 + i))
		}
		res, err := mc.Check(mcFac, mc.Options{
			N: n, F: *fFlag, E: *eFlag,
			Inputs:          inputs,
			TicksPerProcess: *ticks,
			Crashes:         *crashes,
			MaxStates:       *maxState,
		})
		if err != nil {
			return err
		}
		fmt.Printf("states=%d deepest=%d decided-states=%d complete=%v\n",
			res.States, res.Deepest, res.DecidedStates, !res.Truncated)
		if res.Violation != nil {
			fmt.Printf("SAFETY VIOLATION: %s\n", res.Violation)
		} else {
			fmt.Println("no safety violation in any explored interleaving")
		}

	default:
		return fmt.Errorf("unknown scenario %q", *scenario)
	}
	return nil
}

func errMark(err error) string {
	if err != nil {
		return "VIOLATED: " + err.Error()
	}
	return "ok"
}
