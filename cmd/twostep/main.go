// Command twostep runs one process of a live TCP consensus cluster, or a
// client that submits a proposal to a cluster member (its proxy) and waits
// for the decision.
//
// Server (one per process, n addresses shared by all):
//
//	twostep -id 0 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 -f 1 -e 1
//
// The server also listens for clients on the consensus port + 1000 with a
// single-line protocol: "PROPOSE <key> <data>\n" → "DECIDED <key> <data>\n".
//
// Client:
//
//	twostep -propose "42 hello" -proxy 127.0.0.1:8000
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/debugsrv"
	"repro/internal/node"
	"repro/internal/omega"
	"repro/internal/transport"
	"repro/internal/wal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "twostep:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id      = flag.Int("id", -1, "process id (server mode)")
		peers   = flag.String("peers", "", "comma-separated consensus addresses, index = id")
		fFlag   = flag.Int("f", 1, "resilience threshold f")
		eFlag   = flag.Int("e", 1, "fast threshold e")
		object  = flag.Bool("object", true, "object mode (propose-driven); false = task mode")
		tickMS  = flag.Int("tick", 5, "milliseconds per protocol tick (Δ = 10 ticks)")
		stats   = flag.Duration("stats", 30*time.Second, "period between transport stats lines (0 disables)")
		propose = flag.String("propose", "", `client mode: "<key> [data]" to propose`)
		proxy   = flag.String("proxy", "", "client mode: proxy's client address")
		timeout = flag.Duration("timeout", 30*time.Second, "client decision timeout")
		dataDir = flag.String("data-dir", "", "durability directory (journals ballot/vote state); empty runs in-memory")
		fsync   = flag.String("fsync", "always", "journal fsync policy: always | interval | never")
		pprof   = flag.String("pprof", "", "serve net/http/pprof and expvar debug endpoints on this address (e.g. 127.0.0.1:6060)")
	)
	flag.Parse()

	if *propose != "" {
		return clientMain(*proxy, *propose, *timeout)
	}
	if *id < 0 || *peers == "" {
		return fmt.Errorf("server mode needs -id and -peers; client mode needs -propose and -proxy")
	}
	return serverMain(*id, strings.Split(*peers, ","), *fFlag, *eFlag, *object, *tickMS, *stats, *dataDir, *fsync, *pprof)
}

func serverMain(id int, peerList []string, f, e int, object bool, tickMS int, statsEvery time.Duration, dataDir, fsync, pprofAddr string) error {
	n := len(peerList)
	cfg := consensus.Config{ID: consensus.ProcessID(id), N: n, F: f, E: e, Delta: 10}
	if err := cfg.Validate(); err != nil {
		return err
	}
	mode := core.ModeTask
	if object {
		mode = core.ModeObject
	}

	codec := consensus.NewCodec()
	core.RegisterMessages(codec)
	omega.RegisterMessages(codec)

	det := omega.New(cfg, 0)
	proto, err := core.New(cfg, mode, det)
	if err != nil {
		return err
	}
	host := node.New(n, nil, time.Duration(tickMS)*time.Millisecond, det, proto)

	var journal *wal.WAL // nil when running in-memory; read by the debug vars
	if dataDir != "" {
		// Journal the core instance's durable state (ballot, vote, decided
		// value) so a restarted process re-enters the protocol with its
		// promises intact instead of as an amnesiac fresh node.
		policy, err := wal.ParseSyncPolicy(fsync)
		if err != nil {
			return err
		}
		w, winfo, err := wal.Open(filepath.Join(dataDir, "wal"), wal.Options{Policy: policy})
		if err != nil {
			return err
		}
		journal = w
		var last []byte
		if _, err := w.Replay(0, func(_ uint64, p []byte) error {
			last = append(last[:0], p...)
			return nil
		}); err != nil {
			w.Close()
			return err
		}
		if last != nil {
			if err := proto.RestoreJSON(last); err != nil {
				w.Close()
				return err
			}
			fmt.Printf("recovered: state=%s (torn tail=%t)\n", last, winfo.TornTail)
		}
		persisted := string(last)
		host.SetPersist(func() error {
			st, err := proto.SnapshotJSON()
			if err != nil {
				return err
			}
			if string(st) == persisted {
				return nil
			}
			if _, err := w.Append(st); err != nil {
				return err
			}
			persisted = string(st)
			return nil
		}, w.Close)
	}

	addrs := make(map[consensus.ProcessID]string, n)
	for i, a := range peerList {
		addrs[consensus.ProcessID(i)] = strings.TrimSpace(a)
	}
	tr, err := transport.NewTCP(cfg.ID, addrs, codec, host.Handle)
	if err != nil {
		return err
	}
	host.BindTransport(tr)
	defer host.Close()
	host.Start()

	clientAddr, err := clientAddrFor(addrs[cfg.ID])
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", clientAddr)
	if err != nil {
		return fmt.Errorf("client listener: %w", err)
	}
	defer ln.Close()
	fmt.Printf("process %s up: consensus %s, clients %s, n=%d f=%d e=%d mode=%s\n",
		cfg.ID, addrs[cfg.ID], clientAddr, n, f, e, mode)

	if pprofAddr != "" {
		dbgAddr, err := debugsrv.Serve(pprofAddr, map[string]func() any{
			"twostep.transport": func() any { return tr.Stats() },
			"twostep.wal": func() any {
				if journal == nil {
					return nil
				}
				return journal.Stats()
			},
		})
		if err != nil {
			return err
		}
		fmt.Printf("debug: pprof and expvar on http://%s/debug/\n", dbgAddr)
	}

	if statsEvery > 0 {
		ticker := time.NewTicker(statsEvery)
		defer ticker.Stop()
		go func() {
			for range ticker.C {
				fmt.Printf("transport: %s\n", tr.Stats())
			}
		}()
	}

	// SIGTERM and SIGINT close the client listener; the accept loop then
	// returns and the deferred host.Close syncs and closes the journal.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Println("shutting down")
		ln.Close()
	}()

	for {
		conn, err := ln.Accept()
		if err != nil {
			return nil
		}
		go serveClient(conn, host)
	}
}

// clientAddrFor derives the client port (consensus port + 1000).
func clientAddrFor(consensusAddr string) (string, error) {
	host, portStr, err := net.SplitHostPort(consensusAddr)
	if err != nil {
		return "", fmt.Errorf("bad address %q: %w", consensusAddr, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return "", fmt.Errorf("bad port %q: %w", portStr, err)
	}
	return net.JoinHostPort(host, strconv.Itoa(port+1000)), nil
}

func serveClient(conn net.Conn, host *node.Host) {
	defer conn.Close()
	scanner := bufio.NewScanner(conn)
	for scanner.Scan() {
		fields := strings.Fields(scanner.Text())
		if len(fields) < 2 || strings.ToUpper(fields[0]) != "PROPOSE" {
			fmt.Fprintf(conn, "ERR usage: PROPOSE <key> [data]\n")
			continue
		}
		key, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			fmt.Fprintf(conn, "ERR bad key: %v\n", err)
			continue
		}
		data := ""
		if len(fields) > 2 {
			data = strings.Join(fields[2:], " ")
		}
		host.Propose(consensus.Value{Key: key, Data: data})
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		v, err := host.WaitDecision(ctx)
		cancel()
		if err != nil {
			fmt.Fprintf(conn, "ERR %v\n", err)
			continue
		}
		fmt.Fprintf(conn, "DECIDED %d %s\n", v.Key, v.Data)
	}
}

func clientMain(proxy, proposal string, timeout time.Duration) error {
	if proxy == "" {
		return fmt.Errorf("client mode needs -proxy")
	}
	conn, err := net.DialTimeout("tcp", proxy, 5*time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	if _, err := fmt.Fprintf(conn, "PROPOSE %s\n", proposal); err != nil {
		return err
	}
	reply, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return err
	}
	fmt.Print(reply)
	return nil
}
