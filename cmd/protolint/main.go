// Command protolint runs the repository's custom static-analysis suite
// (internal/analyzers) over the module: determinism of the protocol state
// machines, centralised quorum arithmetic, lock discipline, exhaustive
// message dispatch, no blocking I/O inside critical sections, codec
// encode/decode symmetry, atomic field discipline, goroutine lifecycle
// accounting, and error-taxonomy hygiene. See docs/ANALYZERS.md.
//
// Usage:
//
//	go run ./cmd/protolint [-run=name1,name2] [-list] [-json] [packages...]
//
// With no package arguments it analyzes ./.... It exits 1 if any analyzer
// reports a finding, making it suitable for `make lint` and CI. The default
// text format (file:line:col: message (analyzer)) is matched by the GitHub
// problem matcher in .github/protolint-matcher.json; -json emits one object
// per finding for tooling that wants structure instead of a regexp.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/analyzers"
)

// jsonFinding is the -json wire form of one diagnostic. Field names are
// part of the tool's interface; add fields, never rename them.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Package  string `json:"package"`
}

func main() {
	var (
		runList  = flag.String("run", "", "comma-separated subset of analyzers to run (default: all)")
		listOnly = flag.Bool("list", false, "list registered analyzers and exit")
		jsonOut  = flag.Bool("json", false, "emit findings as a JSON array instead of text")
	)
	flag.Parse()

	suite := analyzers.Suite()
	if *listOnly {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *runList != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*runList, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var filtered []*analyzers.Analyzer
		for _, a := range suite {
			if want[a.Name] {
				filtered = append(filtered, a)
				delete(want, a.Name)
			}
		}
		if len(want) > 0 {
			unknown := make([]string, 0, len(want))
			for name := range want {
				unknown = append(unknown, name)
			}
			sort.Strings(unknown)
			fmt.Fprintf(os.Stderr, "protolint: unknown analyzer(s): %s\n", strings.Join(unknown, ", "))
			os.Exit(2)
		}
		suite = filtered
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analyzers.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "protolint: %v\n", err)
		os.Exit(2)
	}

	type finding struct {
		d   analyzers.Diagnostic
		pkg *analyzers.Package
	}
	var all []finding
	for _, pkg := range pkgs {
		for _, a := range suite {
			ds, err := analyzers.RunAnalyzer(a, pkg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "protolint: %s: %v\n", pkg.ImportPath, err)
				os.Exit(2)
			}
			for _, d := range ds {
				all = append(all, finding{d, pkg})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		pi := all[i].pkg.Fset.Position(all[i].d.Pos)
		pj := all[j].pkg.Fset.Position(all[j].d.Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return all[i].d.Analyzer < all[j].d.Analyzer
	})
	if *jsonOut {
		// Always an array, even when empty: consumers parse unconditionally.
		out := make([]jsonFinding, 0, len(all))
		for _, item := range all {
			pos := item.pkg.Fset.Position(item.d.Pos)
			out = append(out, jsonFinding{
				File:     pos.Filename,
				Line:     pos.Line,
				Column:   pos.Column,
				Analyzer: item.d.Analyzer,
				Message:  item.d.Message,
				Package:  item.pkg.ImportPath,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "protolint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, item := range all {
			pos := item.pkg.Fset.Position(item.d.Pos)
			fmt.Printf("%s: %s (%s)\n", pos, item.d.Message, item.d.Analyzer)
		}
	}
	if len(all) > 0 {
		fmt.Fprintf(os.Stderr, "protolint: %d finding(s)\n", len(all))
		os.Exit(1)
	}
}
