// Command protolint runs the repository's custom static-analysis suite
// (internal/analyzers) over the module: determinism of the protocol state
// machines, centralised quorum arithmetic, lock discipline, exhaustive
// message dispatch, and no blocking I/O inside critical sections. See
// docs/ANALYZERS.md.
//
// Usage:
//
//	go run ./cmd/protolint [-run=name1,name2] [-list] [packages...]
//
// With no package arguments it analyzes ./.... It exits 1 if any analyzer
// reports a finding, making it suitable for `make lint` and CI.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/analyzers"
)

func main() {
	var (
		runList  = flag.String("run", "", "comma-separated subset of analyzers to run (default: all)")
		listOnly = flag.Bool("list", false, "list registered analyzers and exit")
	)
	flag.Parse()

	suite := analyzers.Suite()
	if *listOnly {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *runList != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*runList, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var filtered []*analyzers.Analyzer
		for _, a := range suite {
			if want[a.Name] {
				filtered = append(filtered, a)
				delete(want, a.Name)
			}
		}
		if len(want) > 0 {
			unknown := make([]string, 0, len(want))
			for name := range want {
				unknown = append(unknown, name)
			}
			sort.Strings(unknown)
			fmt.Fprintf(os.Stderr, "protolint: unknown analyzer(s): %s\n", strings.Join(unknown, ", "))
			os.Exit(2)
		}
		suite = filtered
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analyzers.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "protolint: %v\n", err)
		os.Exit(2)
	}

	type finding struct {
		d   analyzers.Diagnostic
		pkg *analyzers.Package
	}
	var all []finding
	for _, pkg := range pkgs {
		for _, a := range suite {
			ds, err := analyzers.RunAnalyzer(a, pkg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "protolint: %s: %v\n", pkg.ImportPath, err)
				os.Exit(2)
			}
			for _, d := range ds {
				all = append(all, finding{d, pkg})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		pi := all[i].pkg.Fset.Position(all[i].d.Pos)
		pj := all[j].pkg.Fset.Position(all[j].d.Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return all[i].d.Analyzer < all[j].d.Analyzer
	})
	for _, item := range all {
		pos := item.pkg.Fset.Position(item.d.Pos)
		fmt.Printf("%s: %s (%s)\n", pos, item.d.Message, item.d.Analyzer)
	}
	if len(all) > 0 {
		fmt.Fprintf(os.Stderr, "protolint: %d finding(s)\n", len(all))
		os.Exit(1)
	}
}
