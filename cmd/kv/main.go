// Command kv runs one replica of the replicated key-value store over TCP,
// or a client REPL against a set of replicas.
//
// Replica (one per process; consensus addresses shared by all, client port
// is consensus port + 1000):
//
//	kv -id 0 -peers 127.0.0.1:7100,127.0.0.1:7101,127.0.0.1:7102 -f 1 -e 1 \
//	   -data-dir /var/lib/kv0 -fsync always
//
// With -groups N the process hosts N consensus groups sharing one
// transport, WAL, and fsync stream; keys hash-route across groups
// transparently (see docs/SHARDING.md). -groups 1 (the default) is
// byte-compatible with data directories written before sharding.
//
// Client (reads commands from stdin, PUT/GET/GETL/DEL/STATS/INFO, fails over
// between proxies; -pipeline N negotiates the multiplexed session protocol
// with an N-deep in-flight window, falling back to the legacy line protocol
// against older servers):
//
//	kv -connect 127.0.0.1:8100,127.0.0.1:8101,127.0.0.1:8102 -pipeline 16
//	> PUT city madrid
//	OK
//	> GET city
//	VAL madrid
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/consensus"
	"repro/internal/debugsrv"
	"repro/internal/shard"
	"repro/internal/smr"
	"repro/internal/transport"
	"repro/internal/wal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "kv:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id      = flag.Int("id", -1, "replica id (replica mode)")
		peers   = flag.String("peers", "", "comma-separated consensus addresses, index = id")
		groups  = flag.Int("groups", 1, "consensus groups hosted per process; keys hash-route across groups, all groups share one transport, WAL, and fsync stream")
		fFlag   = flag.Int("f", 1, "resilience threshold f")
		eFlag   = flag.Int("e", 1, "fast threshold e")
		tickMS  = flag.Int("tick", 5, "milliseconds per protocol tick (Δ = 10 ticks)")
		stats   = flag.Duration("stats", 30*time.Second, "period between transport stats lines (0 disables)")
		connect = flag.String("connect", "", "client mode: comma-separated client addresses")
		pipedep = flag.Int("pipeline", 0, "client mode: use the multiplexed session protocol with this in-flight window (0 = legacy one-at-a-time client)")
		dataDir = flag.String("data-dir", "", "durability directory (WAL + snapshots); empty runs in-memory")
		fsync   = flag.String("fsync", "always", "WAL fsync policy: always | interval | never")
		fsyncIv = flag.Duration("fsync-interval", 100*time.Millisecond, "fsync period under -fsync interval")
		snapEv  = flag.Int("snap-every", 64, "applied commands between snapshots (<0 disables)")
		pprof   = flag.String("pprof", "", "serve net/http/pprof and expvar debug endpoints on this address (e.g. 127.0.0.1:6060)")
		leases  = flag.Bool("leases", false, "enable replicated leader leases: the stable Ω leader of each group auto-acquires a lease and serves GETL from local state (docs/LEASES.md)")
		leaseD  = flag.Duration("lease-dur", 2*time.Second, "lease duration under -leases")
		leaseE  = flag.Duration("lease-eps", 50*time.Millisecond, "lease clock-skew margin ε under -leases (2ε must be < -lease-dur)")
	)
	flag.Parse()

	if *connect != "" {
		return clientMain(strings.Split(*connect, ","), *pipedep)
	}
	if *id < 0 || *peers == "" {
		return fmt.Errorf("replica mode needs -id and -peers; client mode needs -connect")
	}
	var dur *shard.Durability
	if *dataDir != "" {
		policy, err := wal.ParseSyncPolicy(*fsync)
		if err != nil {
			return err
		}
		dur = &shard.Durability{
			Dir:           *dataDir,
			Policy:        policy,
			SyncEvery:     *fsyncIv,
			SnapshotEvery: *snapEv,
		}
	}
	var lo *smr.LeaseOptions
	if *leases {
		lo = &smr.LeaseOptions{Duration: *leaseD, Epsilon: *leaseE, AutoGrant: true}
	}
	return replicaMain(*id, strings.Split(*peers, ","), *fFlag, *eFlag, *groups, *tickMS, *stats, *pprof, dur, lo)
}

func replicaMain(id int, peerList []string, f, e, groups, tickMS int, statsEvery time.Duration, pprofAddr string, dur *shard.Durability, lo *smr.LeaseOptions) error {
	n := len(peerList)
	cfg := consensus.Config{ID: consensus.ProcessID(id), N: n, F: f, E: e, Delta: 10}
	// Replica mode always runs the multi-group runtime — with -groups 1 it
	// hosts a single group whose on-disk layout matches the pre-sharding
	// replica, so existing data directories open unchanged.
	rt, err := shard.New(shard.Options{
		Groups:     groups,
		Config:     cfg,
		Tick:       time.Duration(tickMS) * time.Millisecond,
		Durability: dur,
		Leases:     lo,
	})
	if err != nil {
		return err
	}
	defer rt.Close()

	if dur != nil {
		recs, _ := rt.Recovery()
		for g, rec := range recs {
			if rec.Recovered {
				fmt.Printf("recovered g%d: snapshot applied=%d, wal records=%d, torn tail=%t, applied=%d, open slots=%d\n",
					g, rec.SnapshotApplied, rec.WalRecords, rec.TornTail, rec.Applied, rec.OpenSlots)
			}
		}
	}

	codec := consensus.NewCodec()
	shard.RegisterMessages(codec)
	addrs := make(map[consensus.ProcessID]string, n)
	for i, a := range peerList {
		addrs[consensus.ProcessID(i)] = strings.TrimSpace(a)
	}
	tr, err := transport.NewTCP(cfg.ID, addrs, codec, rt.Handler())
	if err != nil {
		return err
	}
	rt.BindTransport(tr)
	rt.Start()

	clientAddr, err := shiftPort(addrs[cfg.ID], 1000)
	if err != nil {
		return err
	}
	srv, err := smr.NewBackendServer(rt, clientAddr, 30*time.Second)
	if err != nil {
		return err
	}
	defer srv.Close()

	fmt.Printf("replica %s up: consensus %s, clients %s, n=%d f=%d e=%d groups=%d\n",
		cfg.ID, addrs[cfg.ID], srv.Addr(), n, f, e, groups)

	if pprofAddr != "" {
		dbgAddr, err := debugsrv.Serve(pprofAddr, map[string]func() any{
			"kv.transport": func() any { st, _ := rt.Group(0).TransportStats(); return st },
			"kv.replica":   func() any { return rt.Info() },
			"kv.batch": func() any {
				stats := make([]smr.BatchStats, rt.Groups())
				for g := range stats {
					stats[g] = rt.Group(g).BatchStats()
				}
				return stats
			},
			"kv.lease": func() any {
				stats := make([]smr.LeaseStats, rt.Groups())
				for g := range stats {
					stats[g] = rt.Group(g).LeaseStats()
				}
				return stats
			},
		})
		if err != nil {
			return err
		}
		fmt.Printf("debug: pprof and expvar on http://%s/debug/\n", dbgAddr)
	}

	if statsEvery > 0 {
		ticker := time.NewTicker(statsEvery)
		defer ticker.Stop()
		go func() {
			for range ticker.C {
				if st, ok := rt.Group(0).TransportStats(); ok {
					fmt.Printf("transport: %s\n", st)
				}
				fmt.Printf("info: %s\n", rt.Info())
			}
		}()
	}

	// SIGTERM and SIGINT both shut down gracefully: the deferred Close
	// syncs and closes the WAL, so a restart recovers without taking the
	// torn-tail path.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	if st, ok := rt.Group(0).TransportStats(); ok {
		fmt.Printf("transport (final): %s\n", st)
	}
	fmt.Printf("info (final): %s\n", rt.Info())
	fmt.Println("shutting down")
	return nil
}

// shiftPort adds delta to the port of a host:port address.
func shiftPort(addr string, delta int) (string, error) {
	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		return "", fmt.Errorf("bad address %q: %w", addr, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return "", fmt.Errorf("bad port %q: %w", portStr, err)
	}
	return net.JoinHostPort(host, strconv.Itoa(port+delta)), nil
}

// kvClient is the REPL's view of either client generation.
type kvClient interface {
	Put(key, val string) error
	Get(key string) (string, error)
	GetLinearizable(key string) (string, error)
	Delete(key string) error
	Stats() (string, error)
	Info() (string, error)
	Close() error
}

func clientMain(addrs []string, pipeline int) error {
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}
	var client kvClient
	if pipeline > 0 {
		sc, err := smr.NewSessionClient(addrs, smr.SessionOptions{
			Timeout:      30 * time.Second,
			Depth:        pipeline,
			PreferLeader: true,
		})
		if err != nil {
			return err
		}
		client = sc
		// Force the handshake so the mode and leader hint are reportable.
		if err := sc.Ping(); err != nil {
			return err
		}
		if sc.Pipelined() {
			fmt.Printf("connected proxy set: %v (session protocol, depth %d, leader hint r%d)\n",
				addrs, pipeline, sc.LeaderHint())
		} else {
			fmt.Printf("connected proxy set: %v (server pre-dates sessions; legacy fallback)\n", addrs)
		}
	} else {
		c, err := smr.NewClient(addrs, 30*time.Second)
		if err != nil {
			return err
		}
		client = c
		fmt.Printf("connected proxy set: %v\n", addrs)
	}
	defer client.Close()

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 0, 64*1024), smr.MaxLineBytes)
	fmt.Print("> ")
	for scanner.Scan() {
		line := strings.TrimLeft(strings.TrimRight(scanner.Text(), "\r"), " ")
		if line == "" {
			fmt.Print("> ")
			continue
		}
		// Split verb and key on single spaces only: a PUT value is
		// everything after the second space, verbatim — joining
		// whitespace-split fields would silently collapse runs of spaces
		// inside the value.
		verb, rest, _ := strings.Cut(line, " ")
		switch strings.ToUpper(verb) {
		case "QUIT", "EXIT":
			return nil
		case "GET", "GETL":
			if rest == "" || strings.Contains(rest, " ") {
				fmt.Printf("usage: %s <key>\n", strings.ToUpper(verb))
				break
			}
			if strings.ToUpper(verb) == "GETL" {
				fmt.Println(renderGet(client.GetLinearizable(rest)))
			} else {
				fmt.Println(renderGet(client.Get(rest)))
			}
		case "PUT":
			key, val, ok := strings.Cut(rest, " ")
			if key == "" || !ok {
				fmt.Println("usage: PUT <key> <value>")
				break
			}
			if err := client.Put(key, val); err != nil {
				fmt.Println("ERR", err)
			} else {
				fmt.Println("OK")
			}
		case "DEL":
			if rest == "" || strings.Contains(rest, " ") {
				fmt.Println("usage: DEL <key>")
				break
			}
			if err := client.Delete(rest); err != nil {
				fmt.Println("ERR", err)
			} else {
				fmt.Println("OK")
			}
		case "STATS":
			line, err := client.Stats()
			if err != nil {
				fmt.Println("ERR", err)
			} else {
				fmt.Println("STATS", line)
			}
		case "INFO":
			line, err := client.Info()
			if err != nil {
				fmt.Println("ERR", err)
			} else {
				fmt.Println("INFO", line)
			}
		default:
			fmt.Println("commands: PUT GET GETL DEL STATS INFO QUIT")
		}
		fmt.Print("> ")
	}
	return nil
}

// renderGet formats a GET outcome for the REPL. A missing key is an
// expected outcome, not an error, and is recognised by sentinel — the
// client wraps its errors, so only errors.Is is reliable (matching on the
// message text broke the moment the client's wording changed).
func renderGet(v string, err error) string {
	switch {
	case err == nil:
		return "VAL " + v
	case errors.Is(err, smr.ErrNotFound):
		return "NONE"
	default:
		return "ERR " + err.Error()
	}
}
