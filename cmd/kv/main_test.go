package main

import (
	"fmt"
	"testing"

	"repro/internal/smr"
)

// TestRenderGetMatchesSentinelNotText pins the errtaxonomy fix: a missing
// key is recognised by errors.Is on the wrapped sentinel, and an unrelated
// error whose message merely contains "not found" is NOT mistaken for one
// (the old strings.Contains classification got both cases wrong).
func TestRenderGetMatchesSentinelNotText(t *testing.T) {
	cases := []struct {
		name string
		v    string
		err  error
		want string
	}{
		{"hit", "42", nil, "VAL 42"},
		{"miss", "", smr.ErrNotFound, "NONE"},
		{"wrapped miss", "", fmt.Errorf("kv get retry 3: %w", smr.ErrNotFound), "NONE"},
		{"text lookalike", "", fmt.Errorf("proxy not found in address book"), "ERR proxy not found in address book"},
	}
	for _, tc := range cases {
		if got := renderGet(tc.v, tc.err); got != tc.want {
			t.Errorf("%s: renderGet = %q, want %q", tc.name, got, tc.want)
		}
	}
}
