// Command plan is the deployment planner: given f, e and a formulation it
// reports how many replicas are needed and where to put them among the
// built-in cloud regions (or a custom matrix) to minimize client commit
// latency.
//
//	plan -f 2 -e 2                       # compare all formulations
//	plan -f 3 -e 2 -mode object          # one formulation, best placement
//	plan -f 2 -e 2 -objective max        # optimize the worst client region
//	plan -f 2 -e 2 -matrix sites.csv     # custom matrix: header row of
//	                                     # names, then RTT rows in ms
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/consensus"
	"repro/internal/planner"
	"repro/internal/quorum"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "plan:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		fFlag     = flag.Int("f", 2, "resilience threshold f")
		eFlag     = flag.Int("e", 2, "fast threshold e")
		mode      = flag.String("mode", "", "object | task | lamport (default: compare all)")
		objective = flag.String("objective", "mean", "mean | max")
		matrix    = flag.String("matrix", "", "CSV file: header of site names, then RTT rows (ms)")
	)
	flag.Parse()

	sites, rtt, err := loadMatrix(*matrix)
	if err != nil {
		return err
	}
	req := planner.Request{
		F: *fFlag, E: *eFlag,
		Sites: sites, RTT: rtt,
	}
	switch *objective {
	case "mean":
		req.Objective = planner.MinimizeMean
	case "max":
		req.Objective = planner.MinimizeMax
	default:
		return fmt.Errorf("unknown objective %q", *objective)
	}

	fmt.Printf("candidate sites: %s\n\n", strings.Join(sites, ", "))

	if *mode != "" {
		m, err := parseMode(*mode)
		if err != nil {
			return err
		}
		req.Mode = m
		plan, err := planner.Solve(req)
		if err != nil {
			return err
		}
		printPlan(m, plan, req)
		return nil
	}

	plans, err := planner.Compare(req)
	if err != nil {
		return err
	}
	for _, m := range []quorum.Mode{quorum.Object, quorum.Task, quorum.Lamport} {
		if plan, ok := plans[m]; ok {
			printPlan(m, plan, req)
		} else {
			fmt.Printf("%-8s needs %d sites — does not fit\n", m, quorum.MinProcesses(m, req.F, req.E))
		}
	}
	return nil
}

func parseMode(s string) (quorum.Mode, error) {
	switch strings.ToLower(s) {
	case "object":
		return quorum.Object, nil
	case "task":
		return quorum.Task, nil
	case "lamport", "fastpaxos":
		return quorum.Lamport, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", s)
	}
}

func printPlan(m quorum.Mode, plan planner.Plan, req planner.Request) {
	names := make([]string, len(plan.Replicas))
	for i, s := range plan.Replicas {
		names[i] = req.Sites[s]
	}
	fmt.Printf("%-8s n=%d  replicas: %s\n", m, plan.N, strings.Join(names, ", "))
	fmt.Printf("         mean proxy commit %.0f ms, worst %d ms\n", plan.MeanLatency, plan.MaxLatency)
	for _, site := range plan.Replicas {
		fmt.Printf("         proxy %-10s → %3d ms\n", req.Sites[site], plan.ProxyLatency[site])
	}
	fmt.Println()
}

// loadMatrix reads a CSV matrix, or returns the built-in 8-region one.
func loadMatrix(path string) ([]string, [][]consensus.Duration, error) {
	if path == "" {
		sites, rtt := bench.BuiltinWANMatrix()
		return sites, rtt, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		return nil, nil, fmt.Errorf("read %s: %w", path, err)
	}
	if len(rows) < 2 {
		return nil, nil, fmt.Errorf("%s: need a header and at least one row", path)
	}
	sites := rows[0]
	n := len(sites)
	if len(rows)-1 != n {
		return nil, nil, fmt.Errorf("%s: %d sites but %d matrix rows", path, n, len(rows)-1)
	}
	rtt := make([][]consensus.Duration, n)
	for i, row := range rows[1:] {
		if len(row) != n {
			return nil, nil, fmt.Errorf("%s: row %d has %d cells, want %d", path, i+1, len(row), n)
		}
		rtt[i] = make([]consensus.Duration, n)
		for j, cell := range row {
			ms, err := strconv.Atoi(strings.TrimSpace(cell))
			if err != nil {
				return nil, nil, fmt.Errorf("%s: row %d col %d: %w", path, i+1, j, err)
			}
			rtt[i][j] = consensus.Duration(ms)
		}
	}
	return sites, rtt, nil
}
