package repro_test

// One testing.B benchmark per table and figure of DESIGN.md §4 — each
// regenerates the corresponding experiment through the same driver cmd/bench
// uses — plus micro-benchmarks of the protocol's hot paths.

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/lowerbound"
	"repro/internal/protocols"
	"repro/internal/quorum"
	"repro/internal/runner"
)

func BenchmarkT1Frontier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := bench.Frontier(); len(r.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkT2Coverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := bench.Coverage(); len(r.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkT3Recovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := bench.Recovery(); len(r.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkT4LowerBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := bench.LowerBounds(); len(r.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkT5Soak(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := bench.SoakTable(10); len(r.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkF1LatencyVsCrashes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := bench.LatencyVsCrashes(); len(r.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkF2Conflicts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := bench.LatencyVsConflicts(); len(r.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkF3WAN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := bench.WAN(); len(r.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkF4SMRThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := bench.Throughput(); len(r.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := bench.Ablation(); len(r.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

// --- micro-benchmarks -----------------------------------------------------

// BenchmarkFastPathRun measures one full E-faulty synchronous fast-path run
// (5 processes, proposal to decision) in the simulator.
func BenchmarkFastPathRun(b *testing.B) {
	sc := runner.Scenario{N: 5, F: 2, E: 1, Delta: 10}
	inputs := map[consensus.ProcessID]consensus.Value{2: consensus.IntValue(7)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := runner.EFaultySync(protocols.CoreObjectFactory, sc, runner.SyncRun{
			Inputs: inputs, Prefer: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !tr.TwoStepFor(2, sc.Delta) {
			b.Fatal("fast path failed")
		}
	}
}

// BenchmarkRecoveryCompute measures the 1B aggregation rule on a full
// quorum of reports.
func BenchmarkRecoveryCompute(b *testing.B) {
	f, e := 3, 3
	n := quorum.TaskMinProcesses(f, e)
	cfg := consensus.Config{ID: 0, N: n, F: f, E: e, Delta: 10}
	node := core.NewUnchecked(cfg, core.ModeTask, core.DefaultOptions(), consensus.FixedLeader(0))
	reports := make(map[consensus.ProcessID]core.OneB, n-f)
	for i := 0; i < n-f; i++ {
		reports[consensus.ProcessID(i)] = core.OneB{
			Ballot:   1,
			Val:      consensus.IntValue(int64(1 + i%2)),
			Proposer: consensus.ProcessID(n - 1),
			Decided:  consensus.None,
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := node.ComputeRecovery(reports); v.IsNone() {
			b.Fatal("no value recovered")
		}
	}
}

// BenchmarkCodecRoundTrip measures wire encoding+decoding of a 1B message.
func BenchmarkCodecRoundTrip(b *testing.B) {
	codec := consensus.NewCodec()
	core.RegisterMessages(codec)
	msg := &core.OneB{Ballot: 7, VBal: 3, Val: consensus.IntValue(42), Proposer: 2, Decided: consensus.None}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := codec.Encode(msg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := codec.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTaskWitness measures one full Appendix-B task construction
// (below bound, with recovery continuation).
func BenchmarkTaskWitness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w, err := lowerbound.TaskWitness(protocols.CoreTaskFactory, 5, 2, 2, 10)
		if err != nil {
			b.Fatal(err)
		}
		if !w.Violated {
			b.Fatal("expected violation below bound")
		}
	}
}
