# Convenience targets for the twostep reproduction.

GO ?= go

.PHONY: all build test test-short bench report examples vet cover fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./... -timeout 600s

# Skips the heavyweight exhaustive model-checking suites.
test-short:
	$(GO) test ./... -short -timeout 300s

bench:
	$(GO) test -bench=. -benchmem -timeout 1200s .

# Regenerates EXPERIMENTS-style report on stdout (plus CSVs under ./out).
report:
	$(GO) run ./cmd/bench -soak-runs 200 -csv out

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/lowerbound
	$(GO) run ./examples/kvstore
	$(GO) run ./examples/wan

cover:
	$(GO) test ./internal/... -cover -short -timeout 300s

# 30 seconds of coverage-guided fuzzing on each fuzz target.
fuzz:
	$(GO) test ./internal/consensus -run=NONE -fuzz=FuzzCodecDecode -fuzztime=30s
	$(GO) test ./internal/core -run=NONE -fuzz=FuzzDeliverRobustness -fuzztime=30s

clean:
	rm -rf out
