# Convenience targets for the twostep reproduction.

GO ?= go

.PHONY: all build test test-short test-flaky race bench bench-groups bench-reads bench-wan bench-wan-short microbench report examples vet lint cover fuzz crash chaos chaos-short clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Custom static-analysis suite (determinism, quorumarith, lockguard,
# msgswitch, iolock, codecsym, atomicguard, golifecycle, errtaxonomy) —
# see docs/ANALYZERS.md.
lint:
	$(GO) run ./cmd/protolint ./...

test:
	$(GO) test ./... -timeout 600s

# Full suite under the race detector (CI runs this; local runs may take a
# few minutes).
race:
	$(GO) test ./... -race -timeout 1200s

# Skips the heavyweight exhaustive model-checking suites.
test-short:
	$(GO) test ./... -short -timeout 300s

# Flake hunt: the timing-sensitive suites repeated under the race detector.
# A test that passes here five times in a row is allowed to rely on its
# timing assumptions; one that doesn't gets converted to a fake clock
# (see TestLeaseExpiryUnderFsyncStall for the pattern).
test-flaky:
	$(GO) test ./internal/smr ./internal/chaos ./internal/node ./internal/wan \
		-race -count=5 -timeout 1200s

bench:
	$(GO) test -bench=. -benchmem -timeout 1200s .

# F8 multi-group scale-out figure: aggregate throughput and cluster
# fsyncs/op vs groups per process — regenerates BENCH_F8.json; see
# docs/SHARDING.md.
bench-groups:
	$(GO) run ./cmd/bench -exp F8 -f8-json BENCH_F8.json

# F9 read-mix figure: GETL latency/throughput across read ratios with the
# three read paths (per-read no-op, coalesced barrier, lease) — regenerates
# BENCH_F9.json; see docs/LEASES.md.
bench-reads:
	$(GO) run ./cmd/bench -exp F9 -f9-json BENCH_F9.json

# F10 WAN suite: per-region commit latency and slow-path rate for every
# protocol over real TCP with geo delays injected and fsync on —
# regenerates BENCH_F10.json (~4–5 min: the delays are real); see
# docs/TESTING.md and docs/PERFORMANCE.md.
bench-wan:
	$(GO) run ./cmd/bench -exp F10 -f10-json BENCH_F10.json

# CI-sized F10: Mesh fabric, two sweep cells, delays compressed 20×.
bench-wan-short:
	$(GO) run ./cmd/bench -exp F10 -f10-short

# Hot-path microbenchmarks (codec allocs, WAL group commit, full replica
# pipeline) at a fixed iteration count so CI gets stable allocs/op without
# waiting for time-based calibration — see docs/PERFORMANCE.md.
microbench:
	$(GO) test -run=NONE -bench 'BenchmarkCommandEncode|BenchmarkSlotWrap|BenchmarkReplicaPipeline' \
		-benchmem -benchtime=100x -count=2 ./internal/smr
	$(GO) test -run=NONE -bench 'BenchmarkWALAppendGroup' \
		-benchmem -benchtime=100x -count=2 ./internal/wal

# Regenerates EXPERIMENTS-style report on stdout (plus CSVs under ./out).
report:
	$(GO) run ./cmd/bench -soak-runs 200 -csv out

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/lowerbound
	$(GO) run ./examples/kvstore
	$(GO) run ./examples/wan

cover:
	$(GO) test ./internal/... -cover -short -timeout 300s

# 30 seconds of coverage-guided fuzzing on each fuzz target.
fuzz:
	$(GO) test ./internal/consensus -run=NONE -fuzz=FuzzCodecDecode -fuzztime=30s
	$(GO) test ./internal/core -run=NONE -fuzz=FuzzDeliverRobustness -fuzztime=30s
	$(GO) test ./internal/wal -run=NONE -fuzz=FuzzRecordCodec -fuzztime=30s
	$(GO) test ./internal/transport -run=NONE -fuzz=FuzzFrameRoundTrip -fuzztime=30s
	$(GO) test ./internal/storage -run=NONE -fuzz=FuzzSnapshotRoundTrip -fuzztime=30s
	$(GO) test ./internal/smr -run=NONE -fuzz=FuzzSessionFrameRoundTrip -fuzztime=30s
	$(GO) test ./internal/shard -run=NONE -fuzz=FuzzRangeRouter -fuzztime=30s

# Crash-injection suite: torn writes, failpoints mid-record, kill-and-restart
# recovery — see docs/DURABILITY.md.
crash:
	$(GO) test -run '^TestCrash' -v -timeout 300s ./internal/wal/... ./internal/smr/...

# Whole-stack chaos campaign: SEEDS consecutive seeded scenarios (live
# durable cluster + nemesis + linearizability check), starting at SEED.
# Rerun a reported failure with `make chaos SEED=N SEEDS=1` — see
# docs/TESTING.md.
SEED ?= 1
SEEDS ?= 20
chaos:
	$(GO) test -tags chaos ./internal/chaos -run TestChaosFull -v \
		-chaos.seed=$(SEED) -chaos.seeds=$(SEEDS) -timeout 1200s
	$(GO) test ./internal/chaos -run TestShardedChaosLinearizable -count=1 -v -timeout 300s
	$(GO) test ./internal/chaos -run 'TestLeaseChaosLinearizable|TestLeaseTeethZeroEpsilon' -count=1 -v -timeout 300s
	$(GO) test ./internal/chaos -run TestWANPartitionLinearizable -count=1 -v -timeout 300s

# Shrunk chaos campaign for per-push CI: fewer seeds, smaller scenarios,
# plus the multi-group scenario (partitions + crash-restart through the
# shared-WAL recovery demux — see docs/SHARDING.md), the lease scenario
# (crash/partition the leaseholder mid-lease — see docs/LEASES.md), and
# the geo scenario (region cut under injected WAN latency — see
# docs/TESTING.md).
chaos-short:
	$(GO) test -tags chaos ./internal/chaos -run TestChaosFull \
		-chaos.seed=$(SEED) -chaos.seeds=5 -chaos.short -timeout 600s
	$(GO) test ./internal/chaos -run TestShardedChaosLinearizable -count=1 -timeout 300s
	$(GO) test ./internal/chaos -run 'TestLeaseChaosLinearizable|TestLeaseTeethZeroEpsilon' -count=1 -timeout 300s
	$(GO) test ./internal/chaos -run TestWANPartitionLinearizable -count=1 -timeout 300s

clean:
	rm -rf out
