// Kvstore: a replicated key-value store over real TCP loopback — five
// replicas running state-machine replication on the paper's object-mode
// protocol, one consensus instance per log slot, with two clients talking
// to different proxies.
//
//	go run ./examples/kvstore
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/consensus"
	"repro/internal/smr"
	"repro/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n, f, e = 5, 2, 2

	codec := consensus.NewCodec()
	smr.RegisterMessages(codec)

	// Boot five replicas on loopback TCP with ephemeral ports.
	addrs := make(map[consensus.ProcessID]string, n)
	for i := 0; i < n; i++ {
		addrs[consensus.ProcessID(i)] = "127.0.0.1:0"
	}
	replicas := make([]*smr.Replica, n)
	transports := make([]*transport.TCP, n)
	for i := 0; i < n; i++ {
		p := consensus.ProcessID(i)
		cfg := consensus.Config{ID: p, N: n, F: f, E: e, Delta: 10}
		rep, err := smr.NewReplica(cfg, time.Millisecond)
		if err != nil {
			return err
		}
		tr, err := transport.NewTCP(p, addrs, codec, rep.Handle)
		if err != nil {
			return err
		}
		addrs[p] = tr.Addr()
		rep.BindTransport(tr)
		replicas[i], transports[i] = rep, tr
	}
	// Publish the real addresses (we bound to :0).
	for _, tr := range transports {
		for p, a := range addrs {
			tr.SetPeerAddr(p, a)
		}
	}
	for i, rep := range replicas {
		rep.Start()
		defer rep.Close()
		fmt.Printf("replica p%d listening on %s\n", i, addrs[consensus.ProcessID(i)])
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Two clients, two different proxies.
	alice := smr.NewKV(replicas[0])
	bob := smr.NewKV(replicas[3])

	fmt.Println("\nalice (proxy p0): PUT venue=Huatulco")
	if err := alice.Put(ctx, "venue", "Huatulco"); err != nil {
		return err
	}
	fmt.Println("bob   (proxy p3): PUT year=2025")
	if err := bob.Put(ctx, "year", "2025"); err != nil {
		return err
	}
	fmt.Println("alice (proxy p0): PUT venue=Mexico  (overwrite)")
	if err := alice.Put(ctx, "venue", "Mexico"); err != nil {
		return err
	}

	// Reads are local to each proxy; give replication a moment so both
	// proxies have applied all three commands, then show convergence.
	deadline := time.Now().Add(5 * time.Second)
	for replicas[0].Applied() < 3 || replicas[3].Applied() < 3 {
		if time.Now().After(deadline) {
			return fmt.Errorf("replicas did not converge")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, c := range []struct {
		name string
		kv   *smr.KV
	}{{"alice@p0", alice}, {"bob@p3", bob}} {
		venue, _ := c.kv.Get("venue")
		year, _ := c.kv.Get("year")
		fmt.Printf("%s sees venue=%q year=%q\n", c.name, venue, year)
	}

	fmt.Printf("\nreplicated log (as applied by p0):\n")
	for slot := 0; slot < replicas[0].Applied(); slot++ {
		v, _ := replicas[0].LogValue(slot)
		cmd, err := smr.DecodeCommand(v)
		if err != nil {
			continue
		}
		fmt.Printf("  slot %d: %s %s=%s (id %s)\n", slot, cmd.Op, cmd.Key, cmd.Val, cmd.ID)
	}
	return nil
}
