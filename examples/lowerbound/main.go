// Lowerbound: execute the paper's Appendix-B impossibility constructions
// against the paper's own protocol and watch the predicted agreement
// violations appear exactly one process below the tight bounds — and
// disappear at them.
//
//	go run ./examples/lowerbound
package main

import (
	"fmt"
	"log"

	"repro/internal/lowerbound"
	"repro/internal/protocols"
	"repro/internal/quorum"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const delta = 10

	fmt.Println("Theorem 5 (consensus task): n ≥ max{2e+f, 2f+1} is tight.")
	fmt.Println("Running the §B.1 adversary against the task protocol, f=3, e=3:")
	for _, n := range []int{8, 9} { // bound is 9
		w, err := lowerbound.TaskWitness(protocols.CoreTaskFactory, n, 3, 3, delta)
		if err != nil {
			return err
		}
		describe(w)
	}

	fmt.Println()
	fmt.Println("Theorem 6 (consensus object): n ≥ max{2e+f−1, 2f+1} is tight.")
	fmt.Println("Running the §B.2 adversary against the object protocol, f=3, e=3:")
	for _, n := range []int{7, 8} { // bound is 8
		w, err := lowerbound.ObjectWitness(protocols.CoreObjectFactory, n, 3, 3, delta)
		if err != nil {
			return err
		}
		describe(w)
	}

	fmt.Println()
	fmt.Println("And the resolution of the paper's opening puzzle: Fast Paxos needs")
	fmt.Printf("max{2e+f+1, 2f+1} = %d processes for f=2, e=2 — at n=6 (the paper's\n",
		quorum.LamportMinProcesses(2, 2))
	fmt.Println("task bound) its first-come fast path is unsafe while the paper's")
	fmt.Println("value-ordered protocol survives the same schedule:")
	wf, err := lowerbound.TaskWitnessVariant(protocols.FastPaxosFactory, 6, 2, 2, delta, lowerbound.TaskLowFast)
	if err != nil {
		return err
	}
	describe(wf)
	wc, err := lowerbound.TaskWitnessVariant(protocols.CoreTaskFactory, 6, 2, 2, delta, lowerbound.TaskLowFast)
	if err != nil {
		return err
	}
	describe(wc)
	return nil
}

func describe(w lowerbound.Witness) {
	rel := "AT the bound"
	if w.N < w.Bound {
		rel = "BELOW the bound"
	}
	fmt.Printf("  n=%d (%s, bound %d): ", w.N, rel, w.Bound)
	if !w.FastDecided {
		fmt.Printf("the schedule could not coax a fast decision — nothing to betray (safe).\n")
		return
	}
	fmt.Printf("%s fast-decided %s at t=%d and crashed silently; ", w.FastDecider, w.FastValue, w.FastAt)
	switch {
	case w.Violated && w.N < w.Bound:
		fmt.Printf("the surviving quorum recovered %s — AGREEMENT VIOLATED, as the theorem predicts.\n", w.SurvivorValue)
	case w.Violated:
		fmt.Printf("the surviving quorum recovered %s — AGREEMENT VIOLATED: this protocol needs more processes.\n", w.SurvivorValue)
	default:
		fmt.Printf("the surviving quorum recovered %s — agreement preserved.\n", w.SurvivorValue)
	}
}
