// Wan: the paper's practical motivation, measured. A client's proxy in each
// region commits a command under four protocols in a simulated wide-area
// deployment; fewer processes means a closer fast quorum, worth hundreds of
// milliseconds per command (paper, §1).
//
//	go run ./examples/wan
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/bench"
	"repro/internal/quorum"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const f, e = 2, 2
	fmt.Printf("Wide-area deployment, f=%d crash tolerance, e=%d fast-path tolerance.\n\n", f, e)
	fmt.Printf("Processes required:\n")
	fmt.Printf("  paper's object protocol:  n = max{2e+f−1, 2f+1} = %d\n", quorum.ObjectMinProcesses(f, e))
	fmt.Printf("  EPaxos-style fast path:   n = 2f+1             = %d (e pinned to ⌈(f+1)/2⌉)\n", quorum.PlainMinProcesses(f))
	fmt.Printf("  Fast Paxos (Lamport):     n = max{2e+f+1, 2f+1} = %d  ← two extra replicas\n", quorum.LamportMinProcesses(f, e))
	fmt.Printf("  Paxos (leader-driven):    n = 2f+1             = %d (no fast path under crashes)\n\n", quorum.PlainMinProcesses(f))

	result := bench.WAN()
	if _, err := result.WriteTo(os.Stdout); err != nil {
		return err
	}
	fmt.Println("Reading the table: the paper's protocol (and EPaxos, which it explains)")
	fmt.Println("commits at the RTT of the 3rd-closest of 5 replicas; Fast Paxos needs the")
	fmt.Println("5th-closest of 7, paying for the extra regions from every proxy.")
	return nil
}
