// Quickstart: boot a five-process consensus cluster in memory, propose a
// value at one process (the client's proxy), and watch every process decide
// it — on the fast path when the network cooperates.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/node"
	"repro/internal/omega"
	"repro/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 5-process deployment tolerating f=2 crashes that still decides in
	// two message delays under e=2 crashes — the paper's object bound
	// max{2e+f−1, 2f+1} = 5, where Fast Paxos would need 7 processes.
	const n, f, e = 5, 2, 2

	mesh := transport.NewMesh(n)
	defer mesh.Close()

	hosts := make([]*node.Host, n)
	for i := 0; i < n; i++ {
		cfg := consensus.Config{ID: consensus.ProcessID(i), N: n, F: f, E: e, Delta: 10}

		// Each process runs an Ω leader detector and the paper's
		// protocol in object mode (explicit propose calls).
		detector := omega.New(cfg, 0)
		proto, err := core.New(cfg, core.ModeObject, detector)
		if err != nil {
			return err
		}

		host := node.New(n, nil, time.Millisecond, detector, proto)
		tr, err := mesh.Endpoint(cfg.ID, host.Handle)
		if err != nil {
			return err
		}
		host.BindTransport(tr)
		hosts[i] = host
	}
	for _, h := range hosts {
		h.Start()
		defer h.Close()
	}

	// A client submits its value to process 3 — its proxy.
	fmt.Println("proposing v(42) at proxy p3 …")
	start := time.Now()
	hosts[3].Propose(consensus.IntValue(42))

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i, h := range hosts {
		v, err := h.WaitDecision(ctx)
		if err != nil {
			return fmt.Errorf("process %d: %w", i, err)
		}
		fmt.Printf("  p%d decided %s\n", i, v)
	}
	fmt.Printf("all processes decided in %s (proxy fast path: two message delays)\n",
		time.Since(start).Round(time.Millisecond))
	return nil
}
